"""Tests for the write-through caches."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memory.cache import Cache


def small_cache(ways=2, sets=4):
    return Cache(size_bytes=ways * sets * 128, ways=ways, line_bytes=128, name="t")


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.load(10)
        assert cache.load(10)
        assert cache.stats.load_misses == 1
        assert cache.stats.load_hits == 1

    def test_lru_eviction(self):
        cache = small_cache(ways=2, sets=1)
        cache.load(0)
        cache.load(1)
        cache.load(2)  # evicts 0
        assert not cache.contains(0)
        assert cache.contains(1) and cache.contains(2)

    def test_lru_updated_on_hit(self):
        cache = small_cache(ways=2, sets=1)
        cache.load(0)
        cache.load(1)
        cache.load(0)  # 1 becomes LRU
        cache.load(2)  # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_sets_are_independent(self):
        cache = small_cache(ways=1, sets=4)
        for line in range(4):
            cache.load(line)
        assert all(cache.contains(line) for line in range(4))

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            Cache(size_bytes=1000, ways=3, line_bytes=128)


class TestWriteThrough:
    def test_store_does_not_allocate(self):
        cache = small_cache()
        assert not cache.store(5)
        assert not cache.contains(5)
        assert cache.stats.store_misses == 1

    def test_store_hits_present_line(self):
        cache = small_cache()
        cache.load(5)
        assert cache.store(5)
        assert cache.stats.store_hits == 1

    def test_dirty_collection(self):
        cache = small_cache()
        cache.store(1)
        cache.store(2)
        cache.store(1)
        dirty = cache.collect_dirty()
        assert dirty == {1, 2}
        assert cache.collect_dirty() == set()


class TestInvalidation:
    def test_invalidate_line(self):
        cache = small_cache()
        cache.load(3)
        assert cache.invalidate(3)
        assert not cache.contains(3)
        assert not cache.invalidate(3)

    def test_invalidate_all(self):
        cache = small_cache()
        for line in range(6):
            cache.load(line)
        count = cache.invalidate_all()
        assert count == cache.stats.invalidations
        assert cache.occupancy == 0

    def test_miss_rate(self):
        cache = small_cache()
        cache.load(1)
        cache.load(1)
        cache.load(2)
        assert cache.stats.load_miss_rate == pytest.approx(2 / 3)

    def test_miss_rate_empty(self):
        assert small_cache().stats.load_miss_rate == 0.0


class TestProperties:
    @given(st.lists(st.integers(0, 1000), max_size=200))
    def test_occupancy_bounded(self, lines):
        cache = small_cache(ways=2, sets=4)
        for line in lines:
            cache.load(line)
        assert cache.occupancy <= 8

    @given(st.lists(st.integers(0, 50), max_size=100))
    def test_hits_plus_misses_equals_loads(self, lines):
        cache = small_cache()
        for line in lines:
            cache.load(line)
        assert cache.stats.loads == len(lines)

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=60))
    def test_immediate_reload_always_hits(self, lines):
        cache = small_cache(ways=4, sets=8)
        for line in lines:
            cache.load(line)
            assert cache.load(line)
