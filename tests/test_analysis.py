"""Tests for the analysis layer: offsets, co-location, reporting."""

import pytest

from repro import TraceScale, build_trace, make_workload, ndp_config
from repro.analysis import (
    BUCKETS,
    analyze_block_offsets,
    bucket_distribution,
    compare_to_paper,
    format_bars,
    format_table,
    fraction_with_fixed_offset,
    study_colocation,
)
from repro.errors import AnalysisError

CFG = ndp_config()


class TestOffsets:
    def test_streaming_block_is_all_fixed(self, mini_trace):
        profiles = analyze_block_offsets(mini_trace.tasks)
        assert len(profiles) == 1
        assert profiles[0].pair_fixed_fraction == pytest.approx(1.0)
        assert profiles[0].bucket == BUCKETS[0]

    def test_random_block_has_no_fixed_offsets(self, irregular_trace):
        profiles = analyze_block_offsets(irregular_trace.tasks)
        assert profiles[0].pair_fixed_fraction == 0.0
        assert profiles[0].bucket == BUCKETS[5]
        assert not profiles[0].has_fixed_offset

    def test_bucket_distribution_sums_to_one(self, lib_trace):
        profiles = analyze_block_offsets(lib_trace.tasks)
        distribution = bucket_distribution(profiles)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert set(distribution) == set(BUCKETS)

    def test_lib_blocks_all_fixed(self, lib_trace):
        profiles = analyze_block_offsets(lib_trace.tasks)
        assert len(profiles) == 2
        assert all(p.bucket == BUCKETS[0] for p in profiles)
        assert fraction_with_fixed_offset(profiles) == 1.0

    def test_mixed_workload_in_middle_bucket(self):
        trace = build_trace(make_workload("CFD"), CFG, TraceScale.TINY, 0)
        profiles = analyze_block_offsets(trace.tasks)
        assert 0.25 <= profiles[0].pair_fixed_fraction <= 0.75

    def test_dominance_validation(self, mini_trace):
        with pytest.raises(AnalysisError):
            analyze_block_offsets(mini_trace.tasks, dominance=0.0)

    def test_empty_profiles_rejected(self):
        with pytest.raises(AnalysisError):
            bucket_distribution([])
        with pytest.raises(AnalysisError):
            fraction_with_fixed_offset([])


class TestColocationStudy:
    def test_regular_workload_learns_well(self, mini_trace):
        study = study_colocation(mini_trace, CFG)
        assert study.baseline < 0.6
        assert study.oracle > 0.8
        # even the smallest learning fraction finds a good mapping
        assert study.by_fraction[0.001] > 0.7

    def test_oracle_at_least_as_good_as_small_fractions(self, mini_trace):
        study = study_colocation(mini_trace, CFG)
        assert study.oracle >= study.by_fraction[0.001] - 0.05

    def test_series_labels(self, mini_trace):
        study = study_colocation(mini_trace, CFG)
        series = study.series()
        assert "baseline mapping" in series
        assert "first 0.1% NDP blocks" in series
        assert "all NDP blocks" in series

    def test_irregular_workload_does_not_colocate(self, irregular_trace):
        study = study_colocation(irregular_trace, CFG)
        assert study.oracle < 0.5


class TestReporting:
    def test_format_table(self):
        text = format_table(
            "T", ["a", "b"], {"row1": {"a": 1.0, "b": 2.0}, "row2": {"a": 3.0}}
        )
        assert "T" in text
        assert "1.00" in text and "2.00" in text
        assert "-" in text  # missing cell

    def test_format_table_empty_rejected(self):
        with pytest.raises(AnalysisError):
            format_table("T", ["a"], {})

    def test_format_bars(self):
        text = format_bars("B", {"x": 1.0, "y": 2.0})
        assert text.count("#") > 0
        lines = text.splitlines()
        assert len(lines) == 4

    def test_format_bars_rejects_empty(self):
        with pytest.raises(AnalysisError):
            format_bars("B", {})

    def test_compare_to_paper(self):
        text = compare_to_paper({"AVG": 1.25, "extra": 9.0}, {"AVG": 1.30})
        assert "paper" in text and "measured" in text
        assert "1.30" in text and "1.25" in text
        assert "extra" not in text

    def test_compare_requires_overlap(self):
        with pytest.raises(AnalysisError):
            compare_to_paper({"x": 1.0}, {"y": 2.0})
