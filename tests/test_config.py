"""Tests for the Table 1 configuration layer."""

import dataclasses

import pytest

from repro.config import (
    CompilerConfig,
    ControlConfig,
    GpuConfig,
    LinkConfig,
    MappingConfig,
    MessageConfig,
    StackConfig,
    baseline_config,
    ndp_config,
)
from repro.errors import ConfigError


class TestPresets:
    def test_baseline_matches_table1(self):
        cfg = baseline_config()
        assert cfg.gpu.n_sms == 68
        assert not cfg.ndp_enabled
        assert cfg.gpu.warps_per_sm == 48
        assert cfg.gpu.warp_size == 32

    def test_ndp_matches_table1(self):
        cfg = ndp_config()
        assert cfg.gpu.n_sms == 64
        assert cfg.ndp_enabled
        assert cfg.stacks.n_stacks == 4
        assert cfg.stacks.vaults_per_stack == 16
        assert cfg.stacks.banks_per_vault == 16
        assert cfg.links.gpu_stack_gbps == 80.0
        assert cfg.links.cross_stack_gbps == 40.0
        assert cfg.stacks.internal_bandwidth_gbps == 160.0

    def test_same_total_sms(self):
        # Fair comparison: 68 baseline SMs == 64 + 4 stack SMs.
        base = baseline_config()
        ndp = ndp_config()
        assert base.gpu.n_sms == ndp.gpu.n_sms + ndp.stacks.n_stacks

    def test_internal_bandwidth_ratio(self):
        cfg = ndp_config(internal_bandwidth_ratio=1.0)
        assert cfg.stacks.internal_bandwidth_gbps == 80.0

    def test_cross_stack_ratio(self):
        cfg = ndp_config(cross_stack_ratio=0.25)
        assert cfg.links.cross_stack_gbps == 20.0

    def test_warp_capacity_multiplier(self):
        cfg = ndp_config(warp_capacity_multiplier=4)
        assert cfg.stack_warp_slots == 4 * 48


class TestDerived:
    def test_bytes_per_cycle(self):
        cfg = ndp_config()
        assert cfg.bytes_per_cycle(140.0) == pytest.approx(100.0)

    def test_cycle_seconds(self):
        cfg = ndp_config()
        assert cfg.cycle_seconds == pytest.approx(1e-9 / 1.4)

    def test_sc_ratio(self):
        assert MessageConfig().sc_ratio == 32

    def test_vault_bandwidth(self):
        cfg = ndp_config()
        assert cfg.vault_bandwidth_gbps == pytest.approx(10.0)

    def test_stack_bits(self):
        assert StackConfig().stack_bits == 2
        assert StackConfig().vault_bits == 4

    def test_total_warp_slots(self):
        assert baseline_config().total_warp_slots_main == 68 * 48


class TestValidation:
    def test_bad_stack_count(self):
        with pytest.raises(ConfigError):
            StackConfig(n_stacks=3).validate()

    def test_bad_warp_multiplier(self):
        with pytest.raises(ConfigError):
            StackConfig(warp_capacity_multiplier=0).validate()

    def test_bad_miss_rate(self):
        with pytest.raises(ConfigError):
            CompilerConfig(assumed_load_miss_rate=1.5).validate()

    def test_bad_coalescing(self):
        with pytest.raises(ConfigError):
            CompilerConfig(assumed_load_coalescing=0.5).validate()

    def test_bad_busy_threshold(self):
        with pytest.raises(ConfigError):
            ControlConfig(channel_busy_threshold=0.0).validate()

    def test_bad_learn_fraction(self):
        with pytest.raises(ConfigError):
            ControlConfig(learn_fraction=1.0).validate()

    def test_bad_link_bandwidth(self):
        with pytest.raises(ConfigError):
            LinkConfig(gpu_stack_gbps=0.0).validate()

    def test_bad_line_size(self):
        with pytest.raises(ConfigError):
            MessageConfig(cache_line_bytes=96).validate()

    def test_bad_page_size(self):
        with pytest.raises(ConfigError):
            MappingConfig(page_bytes=1000).validate()

    def test_mapping_sweep_respects_line_offset(self):
        cfg = dataclasses.replace(
            ndp_config(), mapping=MappingConfig(sweep_low_bit=4)
        )
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_zero_sms(self):
        with pytest.raises(ConfigError):
            GpuConfig(n_sms=0).validate()

    def test_replace_is_functional(self):
        cfg = ndp_config()
        updated = cfg.replace(ndp_enabled=False)
        assert cfg.ndp_enabled and not updated.ndp_enabled
