"""Tests for the observability layer (repro.obs): null-recorder
no-op guarantees, trace capture consistency, JSONL round-trips, and
`repro-tom report` rendering."""

import json
from pathlib import Path

import pytest

from repro import TOM, TraceScale, WorkloadRunner
from repro.analysis.export import (
    read_trace_jsonl,
    result_to_dict,
    trace_from_jsonl,
    trace_samples_to_csv,
    trace_to_jsonl,
    write_trace_jsonl,
)
from repro.cli import _POLICIES, main
from repro.errors import AnalysisError
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    event_from_dict,
    render_report,
)
from repro.obs.events import (
    AccessEvent,
    DecisionEvent,
    LearningEvent,
    MetricSample,
    RunInfo,
)

GOLDEN_TRACE = Path(__file__).parent / "data" / "golden_trace.jsonl"


def _run(recorder=None, policy=TOM, workload="SP"):
    runner = WorkloadRunner(workload, scale=TraceScale.TINY)
    return runner.run(policy, cache=False, recorder=recorder)


class TestNullRecorderIsNoOp:
    """Tracing off must be invisible: same results, bit for bit."""

    def test_null_recorder_bit_identical(self):
        untraced = result_to_dict(_run())
        explicit_null = result_to_dict(_run(recorder=NullRecorder()))
        assert untraced == explicit_null

    def test_trace_recorder_bit_identical(self):
        untraced = result_to_dict(_run())
        traced = result_to_dict(_run(recorder=TraceRecorder()))
        assert untraced == traced

    def test_null_recorder_hooks_accept_anything(self):
        recorder = NullRecorder()
        assert not recorder.enabled
        recorder.set_run("SP", "ctrl+tmap", "TINY", 0)
        recorder.decision(0, 1, "offloaded", 16)
        recorder.learning(position=13, colocation=1.0, instances_observed=2, scores={})
        recorder.access("gpu", False, {0: 4})
        assert recorder.events() == []

    def test_singleton_is_disabled(self):
        assert NULL_RECORDER.enabled is False


class TestTraceCapture:
    @pytest.mark.parametrize("label", ["ctrl+tmap", "no-ctrl+bmap", "ideal+bmap"])
    def test_decision_counts_match_result(self, label):
        recorder = TraceRecorder()
        result = _run(recorder=recorder, policy=_POLICIES[label])
        assert recorder.decision_counts() == result.offload.decision_breakdown

    def test_events_ordered_and_typed(self):
        recorder = TraceRecorder()
        recorder.set_run("SP", "ctrl+tmap", "TINY", 0)
        _run(recorder=recorder)
        events = recorder.events()
        assert isinstance(events[0], RunInfo)
        kinds = {type(e) for e in events}
        assert {DecisionEvent, AccessEvent, LearningEvent, MetricSample} <= kinds

    def test_learning_event_matches_result(self):
        recorder = TraceRecorder()
        result = _run(recorder=recorder)
        (learning,) = [e for e in recorder.events() if isinstance(e, LearningEvent)]
        assert learning.position == result.learned_bit_position

    def test_recorder_is_single_use(self):
        recorder = TraceRecorder()
        _run(recorder=recorder)
        with pytest.raises(AnalysisError):
            _run(recorder=recorder)

    def test_ring_buffer_drops_are_counted(self):
        recorder = TraceRecorder(access_capacity=4)
        _run(recorder=recorder)
        accesses = [e for e in recorder.events() if isinstance(e, AccessEvent)]
        assert len(accesses) == 4
        assert recorder.dropped["access"] > 0

    def test_traced_run_bypasses_cache(self):
        runner = WorkloadRunner("SP", scale=TraceScale.TINY)
        runner.run(TOM)  # populate the in-memory cache
        recorder = TraceRecorder()
        runner.run(TOM, recorder=recorder)
        assert recorder.decision_counts()  # a cache hit would record nothing


class TestJsonlRoundTrip:
    def test_round_trip_equality(self):
        recorder = TraceRecorder()
        recorder.set_run("SP", "ctrl+tmap", "TINY", 0)
        _run(recorder=recorder)
        events = recorder.events()
        assert trace_from_jsonl(trace_to_jsonl(events)) == events

    def test_file_round_trip(self, tmp_path):
        recorder = TraceRecorder()
        recorder.set_run("SP", "ctrl+tmap", "TINY", 0)
        _run(recorder=recorder)
        events = recorder.events()
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(events, path) == len(events)
        assert read_trace_jsonl(path) == events

    def test_event_from_dict_restores_int_keys(self):
        event = AccessEvent(time=1.0, origin="gpu", is_store=False, stacks={3: 7})
        restored = event_from_dict(json.loads(json.dumps(event.to_dict())))
        assert restored == event
        assert list(restored.stacks) == [3]

    def test_unknown_kind_rejected(self):
        with pytest.raises(AnalysisError):
            event_from_dict({"kind": "bogus"})

    def test_golden_trace_round_trips(self):
        events = read_trace_jsonl(GOLDEN_TRACE)
        assert trace_from_jsonl(trace_to_jsonl(events)) == events


class TestReport:
    def test_renders_golden_trace(self):
        out = render_report(read_trace_jsonl(GOLDEN_TRACE))
        assert "SP / ctrl+tmap (TINY, seed 0)" in out
        assert "offload decisions" in out
        assert "offloaded             : 94 (100.0%)" in out
        assert "chose consecutive-bit position 13" in out
        assert "stack routing" in out
        assert "channel utilization timeline" in out

    def test_report_decision_counts_come_from_events(self):
        events = read_trace_jsonl(GOLDEN_TRACE)
        decisions = [e for e in events if isinstance(e, DecisionEvent)]
        out = render_report(events)
        assert f"candidates considered : {len(decisions)}" in out

    def test_samples_csv(self):
        events = read_trace_jsonl(GOLDEN_TRACE)
        csv_text = trace_samples_to_csv(events)
        header, *rows = csv_text.strip().splitlines()
        assert header.startswith("time,window,tx0_util")
        n_samples = sum(1 for e in events if isinstance(e, MetricSample))
        assert len(rows) == n_samples


class TestCli:
    def test_run_trace_then_report(self, tmp_path, capsys):
        trace = tmp_path / "sp.jsonl"
        assert (
            main(
                ["run", "SP", "--scale", "TINY", "--trace", str(trace)]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "trace:" in err and trace.exists()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "offload decisions" in out

    def test_report_samples_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "samples.csv"
        assert (
            main(
                ["report", str(GOLDEN_TRACE), "--samples-csv", str(csv_path)]
            )
            == 0
        )
        assert csv_path.read_text().startswith("time,window,")

    def test_report_missing_file(self, capsys):
        assert main(["report", "/nonexistent/trace.jsonl"]) == 2

    def test_trace_window_override(self, tmp_path):
        trace = tmp_path / "sp.jsonl"
        assert (
            main(
                [
                    "run",
                    "SP",
                    "--scale",
                    "TINY",
                    "--trace",
                    str(trace),
                    "--trace-window",
                    "512",
                ]
            )
            == 0
        )
        samples = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if '"sample"' in line
        ]
        assert len(samples) >= 3  # 512-cycle windows on a ~3.7k-cycle run


class TestLinkChecker:
    def test_repo_docs_have_no_broken_links(self):
        import subprocess
        import sys

        script = Path(__file__).parent.parent / "tools" / "check_links.py"
        proc = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
