"""Rule-level tests for repro-lint, driven by the fixtures under
``tests/data/lint/``. Each bad fixture pins the exact (rule, line) set
the rule must produce; each good fixture must come back empty."""

from pathlib import Path

import pytest

from repro.lint.runner import run_lint
from repro.lint.rules import all_rules, rule_ids

FIXTURES = Path(__file__).parent / "data" / "lint"
CASES = FIXTURES / "cases"
TREE = FIXTURES / "tree"


def lint_file(name, rules=None):
    return run_lint([CASES / name], rules=rules, root=FIXTURES)


class TestRegistry:
    def test_rule_ids(self):
        assert rule_ids() == ["ND01", "ND02", "ND03", "PROTO", "PAR"]

    def test_rule_subset_selection(self):
        assert [r.id for r in all_rules(["ND02", "PAR"])] == ["ND02", "PAR"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            all_rules(["ND42"])


class TestND01:
    def test_bad_fixture_lines(self):
        result = lint_file("nd01_bad.py", rules=["ND01"])
        assert [(f.rule, f.line) for f in result.findings] == [
            ("ND01", 7),   # for-loop over module-level set
            ("ND01", 12),  # list comprehension over a set literal
            ("ND01", 16),  # list() of a set
            ("ND01", 20),  # str.join of a set
            ("ND01", 24),  # set.pop()
            ("ND01", 28),  # star-unpacking
            ("ND01", 32),  # yield from
            ("ND01", 36),  # sum() of an annotated set argument
            ("ND01", 41),  # tuple() of a set-operator result
            ("ND01", 49),  # for-loop over a self.attribute set
        ]

    def test_good_fixture_clean(self):
        result = lint_file("nd01_good.py", rules=["ND01"])
        assert result.findings == []


class TestND02:
    def test_bad_fixture_lines(self):
        result = lint_file("nd02_bad.py", rules=["ND02"])
        assert [(f.rule, f.line) for f in result.findings] == [
            ("ND02", 13),  # time.time
            ("ND02", 17),  # datetime.now
            ("ND02", 21),  # uuid.uuid4
            ("ND02", 25),  # os.urandom
            ("ND02", 29),  # global random.random
            ("ND02", 33),  # global random.shuffle
            ("ND02", 37),  # random.Random() unseeded
            ("ND02", 41),  # np.random.default_rng() unseeded
            ("ND02", 45),  # legacy np.random.randint
            ("ND02", 49),  # sorted(key=id)
            ("ND02", 53),  # .sort(key=lambda: id(...))
        ]

    def test_good_fixture_clean(self):
        result = lint_file("nd02_good.py", rules=["ND02"])
        assert result.findings == []


class TestND03:
    def test_environ_read_outside_seam(self, tmp_path):
        offender = tmp_path / "repro" / "core" / "knobs.py"
        offender.parent.mkdir(parents=True)
        offender.write_text(
            "import os\n\n\ndef scale():\n"
            '    return os.environ.get("REPRO_SCALE", "SMALL")\n'
        )
        result = run_lint([tmp_path], rules=["ND03"], root=tmp_path)
        assert [(f.rule, f.line) for f in result.findings] == [("ND03", 5)]

    def test_getenv_flagged_too(self, tmp_path):
        offender = tmp_path / "repro" / "anywhere.py"
        offender.parent.mkdir(parents=True)
        offender.write_text(
            "from os import getenv\n\n\ndef read():\n"
            '    return getenv("REPRO_X")\n'
        )
        result = run_lint([tmp_path], rules=["ND03"], root=tmp_path)
        assert [(f.rule, f.line) for f in result.findings] == [("ND03", 5)]

    def test_sanctioned_tree_clean(self):
        # tree/repro/config.py reads os.environ but IS the seam.
        result = run_lint([TREE], rules=["ND03"], root=FIXTURES)
        assert result.findings == []


class TestPROTO:
    def test_bad_fixture(self):
        result = lint_file("proto_bad.py", rules=["PROTO"])
        assert [(f.rule, f.line) for f in result.findings] == [
            ("PROTO", 8),   # yield 42
            ("PROTO", 13),  # bare yield
            ("PROTO", 21),  # yield of a non-request local
            ("PROTO", 25),  # Engine() construction
            ("PROTO", 29),  # Event() construction
        ]

    def test_good_fixture_clean(self):
        result = lint_file("proto_good.py", rules=["PROTO"])
        assert result.findings == []

    def test_request_set_learned_from_tree(self, tmp_path):
        """With a mini simcore in the scanned tree, PROTO recognizes its
        request classes instead of the canonical six."""
        simcore = tmp_path / "repro" / "utils" / "simcore.py"
        simcore.parent.mkdir(parents=True)
        simcore.write_text(
            "from dataclasses import dataclass\n\n\n"
            "@dataclass\nclass Sleep:\n    delay: float\n\n\n"
            "def _handle(engine, process, request):\n    return None\n\n\n"
            "_DISPATCH = {Sleep: _handle}\n"
        )
        user = tmp_path / "repro" / "core" / "proc.py"
        user.parent.mkdir(parents=True)
        user.write_text(
            "from ..utils.simcore import Sleep\n\n\n"
            "def process():\n"
            "    yield Sleep(1.0)\n"
            "    yield 7\n"
        )
        result = run_lint([tmp_path], rules=["PROTO"], root=tmp_path)
        assert [(f.rule, f.line) for f in result.findings] == [("PROTO", 6)]
        assert "Sleep" in result.findings[0].message


class TestPAR:
    def test_consistent_tree_clean(self):
        result = run_lint([TREE], rules=["PAR"], root=FIXTURES)
        assert result.findings == []
        assert result.notices == []

    def test_whole_tree_clean_under_all_rules(self):
        result = run_lint([TREE], root=FIXTURES)
        assert result.findings == []


class TestSuppressions:
    def test_fixture_semantics(self):
        result = lint_file("suppressed.py")
        # Same-line and own-line markers suppress their findings.
        assert [(f.rule, f.line) for f in result.suppressed] == [
            ("ND01", 9),
            ("ND02", 14),
        ]
        # Reasonless / unknown-rule / malformed markers do NOT suppress
        # and add a LINT finding each.
        assert [(f.rule, f.line) for f in result.findings] == [
            ("ND01", 18), ("LINT", 18),  # reasonless marker
            ("ND01", 22), ("LINT", 22),  # unknown-rule marker
            ("ND01", 26), ("LINT", 26),  # malformed marker
        ]
        # The marker that matched nothing is reported as unused.
        assert any("unused suppression" in n for n in result.notices)

    def test_docstring_examples_are_not_markers(self, tmp_path):
        probe = tmp_path / "probe.py"
        probe.write_text(
            '"""Docs may show `# repro-lint: allow[ND01] example` safely."""\n'
            "VALUE = 1\n"
        )
        result = run_lint([probe], root=tmp_path)
        assert result.findings == []
        assert result.notices == []


class TestBrokenInput:
    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def incomplete(:\n")
        result = run_lint([bad], root=tmp_path)
        assert [f.rule for f in result.findings] == ["LINT"]
        assert "syntax error" in result.findings[0].message

    def test_suppressions_still_parse_in_broken_file(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text(
            "# repro-lint: allow[LINT] this file is intentionally broken\n"
            "def incomplete(:\n"
        )
        result = run_lint([bad], root=tmp_path)
        # The own-line marker on line 1 covers line 2's syntax error.
        assert result.findings == []
        assert [(f.rule, f.line) for f in result.suppressed] == [("LINT", 2)]


class TestSelfCheck:
    def test_real_tree_is_clean(self):
        """src/repro must lint clean (the repo gate, run in-process)."""
        src = Path(__file__).parent.parent / "src" / "repro"
        result = run_lint([src], root=src.parent.parent)
        assert result.findings == [], [f.render() for f in result.findings]

    def test_real_tree_par_checks_actually_ran(self):
        src = Path(__file__).parent.parent / "src" / "repro"
        result = run_lint([src], rules=["PAR"], root=src.parent.parent)
        # _core.c is present in this repo, so no skip notice may appear.
        assert not any("_core.c" in n for n in result.notices), result.notices
        assert result.findings == []
