"""The sanctioned environment seam (``repro.config.env_text``/``env_flag``).

PR 9 rerouted every scattered ``os.environ`` read through these two
helpers so rule ND03 can enforce a single audit point. These tests pin
the *legacy* semantics of each rerouted knob — the refactor must be
behaviour-preserving bit for bit, including the quirks (no case folding,
no stripping in flag checks, stripping in numeric ones).
"""

import pytest

from repro.config import env_flag, env_text


class TestEnvText:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEAM_PROBE", raising=False)
        assert env_text("REPRO_SEAM_PROBE") == ""
        assert env_text("REPRO_SEAM_PROBE", "SMALL") == "SMALL"

    def test_set_returns_raw_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEAM_PROBE", "  MeDiUm  ")
        assert env_text("REPRO_SEAM_PROBE") == "  MeDiUm  "


class TestEnvFlag:
    """``env_flag`` must match the historical membership test
    ``value in ("1", "true", "yes")`` exactly."""

    @pytest.mark.parametrize("value", ["1", "true", "yes"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SEAM_PROBE", value)
        assert env_flag("REPRO_SEAM_PROBE") is True

    @pytest.mark.parametrize(
        "value",
        # The legacy sites did NOT strip or lowercase: "TRUE", " 1" and
        # "yes " were all falsy before the refactor and must stay so.
        ["", "0", "TRUE", "Yes", " 1", "1 ", "on", "y", "no"],
    )
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SEAM_PROBE", value)
        assert env_flag("REPRO_SEAM_PROBE") is False

    def test_unset_is_falsy(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEAM_PROBE", raising=False)
        assert env_flag("REPRO_SEAM_PROBE") is False


class TestReroutedKnobs:
    """Each consumer that moved onto the seam keeps its old behaviour."""

    def test_lockstep_enabled(self, monkeypatch):
        from repro.core.gridrun import lockstep_enabled

        monkeypatch.delenv("REPRO_NO_GRID", raising=False)
        assert lockstep_enabled() is True
        monkeypatch.setenv("REPRO_NO_GRID", "1")
        assert lockstep_enabled() is False
        # Pre-seam quirk: only the exact lowercase spellings disable it.
        monkeypatch.setenv("REPRO_NO_GRID", "TRUE")
        assert lockstep_enabled() is True

    def test_cache_enabled(self, monkeypatch):
        from repro.core.result_cache import enabled

        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert enabled() is True
        monkeypatch.setenv("REPRO_NO_CACHE", "yes")
        assert enabled() is False
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        assert enabled() is True

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        from repro.core.result_cache import cache_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", f"  {tmp_path}  ")
        assert cache_dir() == tmp_path

    def test_default_jobs(self, monkeypatch):
        from repro.core.parallel import default_jobs

        monkeypatch.setenv("REPRO_JOBS", " 3 ")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "two")
        with pytest.raises(ValueError):
            default_jobs()

    def test_supervisor_config_from_env(self, monkeypatch):
        from repro.core.supervisor import SupervisorConfig
        from repro.errors import ConfigError

        monkeypatch.setenv("REPRO_JOB_TIMEOUT", " 2.5 ")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "4")
        config = SupervisorConfig.from_env()
        assert config.timeout == 2.5
        assert config.max_retries == 4
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "soon")
        with pytest.raises(ConfigError):
            SupervisorConfig.from_env()

    def test_default_scale(self, monkeypatch):
        from repro.analysis.figures import default_scale
        from repro.trace.generator import TraceScale

        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert default_scale() is TraceScale.SMALL
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert default_scale() is TraceScale.TINY

    def test_faults_active(self, monkeypatch):
        from repro.testing import faults

        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults.active() is False
        # Whitespace-only specs were always treated as "off".
        monkeypatch.setenv("REPRO_FAULTS", "   ")
        assert faults.active() is False
        monkeypatch.setenv("REPRO_FAULTS", "job/*:fail:p=1")
        assert faults.active() is True
