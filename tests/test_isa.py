"""Tests for the mini-PTX IR: instructions, kernels, and the builder."""

import pytest

from repro.errors import IsaError
from repro.isa import Instruction, KernelBuilder, OpClass, Opcode
from repro.isa.instructions import dynamic_weight, is_register, opclass_of


class TestOperands:
    def test_register_detection(self):
        assert is_register("%r1")
        assert not is_register("r1")
        assert not is_register(7)
        assert not is_register(1.5)

    def test_opclass_mapping(self):
        assert opclass_of(Opcode.LD_GLOBAL) is OpClass.LOAD
        assert opclass_of(Opcode.ST_GLOBAL) is OpClass.STORE
        assert opclass_of(Opcode.LD_SHARED) is OpClass.SHARED_LOAD
        assert opclass_of(Opcode.BAR_SYNC) is OpClass.BARRIER
        assert opclass_of(Opcode.ATOM_GLOBAL) is OpClass.ATOMIC
        assert opclass_of(Opcode.BRA) is OpClass.BRANCH
        assert opclass_of(Opcode.EXIT) is OpClass.EXIT
        assert opclass_of(Opcode.MAD) is OpClass.ALU

    def test_dynamic_weights(self):
        assert dynamic_weight(Opcode.ADD) == 1
        assert dynamic_weight(Opcode.DIV) > 1
        assert dynamic_weight(Opcode.EXP) > 1


class TestInstruction:
    def test_reads_and_writes(self):
        instr = Instruction(
            opcode=Opcode.MAD, dsts=("%d",), srcs=("%a", "%b", 2.0), pred="%p"
        )
        assert set(instr.reads) == {"%a", "%b", "%p"}
        assert instr.writes == ("%d",)

    def test_load_properties(self):
        load = Instruction(
            opcode=Opcode.LD_GLOBAL, dsts=("%x",), srcs=("%base", "%i"), array="arr"
        )
        assert load.is_load and not load.is_store
        assert load.is_global_memory
        assert load.array == "arr"

    def test_store_reads_value_and_address(self):
        store = Instruction(
            opcode=Opcode.ST_GLOBAL, srcs=("%value", "%base", "%i")
        )
        assert store.is_store
        assert set(store.reads) == {"%value", "%base", "%i"}

    def test_non_register_destination_rejected(self):
        with pytest.raises(IsaError):
            Instruction(opcode=Opcode.ADD, dsts=("dest",), srcs=("%a", "%b"))

    def test_bad_predicate_rejected(self):
        with pytest.raises(IsaError):
            Instruction(opcode=Opcode.ADD, dsts=("%d",), srcs=(1,), pred="p")

    def test_bra_needs_target(self):
        with pytest.raises(IsaError):
            Instruction(opcode=Opcode.BRA)

    def test_render_load_store(self):
        load = Instruction(opcode=Opcode.LD_GLOBAL, dsts=("%x",), srcs=("%a", "%i"))
        assert load.render() == "ld.global %x, [%a + %i]"
        store = Instruction(opcode=Opcode.ST_GLOBAL, srcs=("%v", "%a", "%i"))
        assert store.render() == "st.global [%a + %i], %v"

    def test_render_predicated(self):
        instr = Instruction(opcode=Opcode.BRA, target="loop", pred="%p")
        assert instr.render() == "@%p bra loop"


class TestKernel:
    def _loop_kernel(self):
        b = KernelBuilder("k", params=["%n"])
        b.mov("%i", 0)
        b.label("loop")
        b.ld_global("%x", addr=["%i"], array="a")
        b.add("%i", "%i", 1)
        b.setp("%p", "%i", "%n")
        b.bra("loop", pred="%p")
        b.st_global(addr=["%i"], value="%x", array="b")
        b.exit()
        return b.build()

    def test_access_ids_dense(self):
        kernel = self._loop_kernel()
        ids = [i.access_id for i in kernel.memory_instructions]
        assert ids == [0, 1]
        assert kernel.n_accesses == 2

    def test_access_lookup(self):
        kernel = self._loop_kernel()
        assert kernel.access(0).is_load
        assert kernel.access(1).is_store
        with pytest.raises(IsaError):
            kernel.access(2)

    def test_label_index(self):
        kernel = self._loop_kernel()
        assert kernel.label_index("loop") == 1
        with pytest.raises(IsaError):
            kernel.label_index("nope")

    def test_undefined_branch_target_rejected(self):
        b = KernelBuilder("k")
        b.bra("nowhere")
        b.exit()
        with pytest.raises(IsaError):
            b.build()

    def test_must_terminate(self):
        b = KernelBuilder("k")
        b.mov("%a", 1)
        with pytest.raises(IsaError):
            b.build()

    def test_empty_kernel_rejected(self):
        with pytest.raises(IsaError):
            KernelBuilder("k").build()

    def test_dump_contains_labels_and_params(self):
        kernel = self._loop_kernel()
        text = kernel.dump()
        assert ".kernel k" in text
        assert ".param %n" in text
        assert "loop:" in text
        assert "ld.global" in text

    def test_duplicate_label_rejected(self):
        b = KernelBuilder("k")
        b.label("x")
        with pytest.raises(IsaError):
            b.label("x")

    def test_iteration(self):
        kernel = self._loop_kernel()
        assert len(list(kernel)) == len(kernel) == 7
