"""The lockstep grid engine vs. the scalar reference engine.

The contract under test (repro.core.gridrun): running a grid of
(policy, configuration) points through ``WorkloadRunner.run_grid`` is
bit-identical to running each variant's policies sequentially through
its own ``WorkloadRunner`` — the scalar ``Simulator`` stays the
reference implementation. On top of that: deduplicated lanes replay
their allocation-table side effects, faulted lanes evict to scalar
replay without touching the rest of the grid, and ``REPRO_NO_GRID``
forces the scalar path outright.

Set ``REPRO_FULL_GRID=1`` to also run the full 70-point Figure-8 SMALL
grid equivalence check (several minutes; run before perf-sensitive
changes to the engine).
"""

from __future__ import annotations

import dataclasses
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TraceScale, WorkloadRunner, ndp_config
from repro.core import gridrun
from repro.core.parallel import SuiteJob, execute_job
from repro.core.policies import BASELINE, FIGURE8_GRID, IDEAL_NDP, NDP_CTRL_ORACLE
from repro.workloads.suite import SUITE_ORDER

GRID_POLICIES = (BASELINE,) + FIGURE8_GRID + (NDP_CTRL_ORACLE, IDEAL_NDP)


def _threshold_variant(threshold: float):
    config = ndp_config()
    return dataclasses.replace(
        config,
        control=dataclasses.replace(
            config.control, channel_busy_threshold=threshold
        ),
    )


def _scalar_reference(workload, scale, seed, policies, configuration=None):
    """The reference semantics: one fresh runner, policies in order."""
    runner = WorkloadRunner(
        workload, scale=scale, seed=seed, ndp_configuration=configuration
    )
    return {policy.label: runner.run(policy, cache=False) for policy in policies}


class TestBitIdentity:
    @pytest.mark.parametrize("workload", ["BFS", "KM", "SP", "LIB"])
    def test_tiny_grid_matches_scalar(self, workload, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        expected = _scalar_reference(workload, TraceScale.TINY, 0, GRID_POLICIES)
        runner = WorkloadRunner(workload, scale=TraceScale.TINY)
        got = runner.run_grid(GRID_POLICIES)
        report = runner.last_grid_report
        assert report is not None and not report.evicted
        assert report.simulated + report.deduplicated == len(GRID_POLICIES)
        for policy in GRID_POLICIES:
            assert got[policy.label] == expected[policy.label], policy.label

    def test_variant_grid_matches_fresh_runners(self, monkeypatch):
        """The headline scenario: policies x channel-busy-threshold
        variants, each variant bit-identical to its own fresh runner,
        with cross-variant deduplication actually engaging."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        variants = [_threshold_variant(t) for t in (0.90, 0.85)]
        expected = [
            _scalar_reference("BFS", TraceScale.TINY, 0, GRID_POLICIES, cfg)
            for cfg in variants
        ]
        runner = WorkloadRunner(
            "BFS", scale=TraceScale.TINY, ndp_configuration=variants[0]
        )
        got = runner.run_grid(GRID_POLICIES, variants=variants)
        report = runner.last_grid_report
        assert report.deduplicated > 0, "variant grid must dedup lanes"
        assert report.simulated < len(variants) * len(GRID_POLICIES)
        for index in range(len(variants)):
            for policy in GRID_POLICIES:
                assert got[index][policy.label] == expected[index][policy.label]

    def test_oracle_dedup_patches_learned_fields(self, monkeypatch):
        """BFS's oracle learning falls back to the baseline mapping, so
        the oracle lane dedups onto ctrl+bmap — but must still report
        its own label and learned bit position."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        runner = WorkloadRunner("BFS", scale=TraceScale.TINY)
        got = runner.run_grid(GRID_POLICIES)
        oracle = got[NDP_CTRL_ORACLE.label]
        assert oracle.policy_label == NDP_CTRL_ORACLE.label
        assert oracle.learned_bit_position is not None

    @pytest.mark.skipif(
        not os.environ.get("REPRO_FULL_GRID"),
        reason="full 70-point SMALL grid check; set REPRO_FULL_GRID=1",
    )
    def test_full_figure8_small_grid(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        policies = (BASELINE,) + FIGURE8_GRID
        for workload in SUITE_ORDER:
            expected = _scalar_reference(
                workload, TraceScale.SMALL, 0, policies
            )
            runner = WorkloadRunner(workload, scale=TraceScale.SMALL)
            got = runner.run_grid(policies)
            for policy in policies:
                assert got[policy.label] == expected[policy.label], (
                    workload,
                    policy.label,
                )


class TestEngagement:
    def test_kill_switch_forces_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_GRID", "1")
        assert not gridrun.lockstep_enabled()

        def boom(*args, **kwargs):
            raise AssertionError("REPRO_NO_GRID must bypass the grid engine")

        monkeypatch.setattr(gridrun, "run_grid", boom)
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        runner = WorkloadRunner("SP", scale=TraceScale.TINY)
        got = runner.run_grid((BASELINE,) + FIGURE8_GRID[:1])
        expected = _scalar_reference(
            "SP", TraceScale.TINY, 0, (BASELINE,) + FIGURE8_GRID[:1]
        )
        for label, result in expected.items():
            assert got[label] == result

    def test_execute_job_routes_multi_policy_jobs_to_grid(self, monkeypatch):
        calls = []
        original = WorkloadRunner.run_grid

        def spy(self, policies, **kwargs):
            calls.append(tuple(p.label for p in policies))
            return original(self, policies, **kwargs)

        monkeypatch.setattr(WorkloadRunner, "run_grid", spy)
        job = SuiteJob(
            workload="SP",
            policies=(BASELINE, FIGURE8_GRID[0]),
            scale=TraceScale.TINY,
            seed=0,
        )
        results = execute_job(job)
        assert calls == [(BASELINE.label, FIGURE8_GRID[0].label)]
        assert set(results) == {BASELINE.label, FIGURE8_GRID[0].label}

    def test_execute_job_single_policy_stays_scalar(self, monkeypatch):
        def boom(self, policies, **kwargs):
            raise AssertionError("single-policy jobs must not use the grid")

        monkeypatch.setattr(WorkloadRunner, "run_grid", boom)
        job = SuiteJob(
            workload="SP",
            policies=(BASELINE,),
            scale=TraceScale.TINY,
            seed=0,
        )
        assert set(execute_job(job)) == {BASELINE.label}

    def test_warm_grid_builds_no_trace(self, monkeypatch):
        """Every lane probes the persistent cache before the trace is
        built: a fully-warm grid constructs nothing."""
        runner = WorkloadRunner("SP", scale=TraceScale.TINY)
        cold = runner.run_grid(GRID_POLICIES)

        import repro.core.experiment as experiment

        def boom(*args, **kwargs):
            raise AssertionError("warm grid must not build a trace")

        monkeypatch.setattr(experiment, "build_trace", boom)
        warm = WorkloadRunner("SP", scale=TraceScale.TINY).run_grid(
            GRID_POLICIES
        )
        assert warm == cold

    def test_trace_incompatible_variant_evicts_to_own_runner(
        self, monkeypatch
    ):
        """A variant that would generate a different trace (here: a
        different page size) cannot share the grid's trace and runs on
        its own scalar runner — still producing its reference result."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        base = ndp_config()
        other = dataclasses.replace(
            base,
            mapping=dataclasses.replace(
                base.mapping, page_bytes=base.mapping.page_bytes * 2
            ),
        )
        policies = (BASELINE, FIGURE8_GRID[0], FIGURE8_GRID[2])
        expected = [
            _scalar_reference("SP", TraceScale.TINY, 0, policies, cfg)
            for cfg in (base, other)
        ]
        runner = WorkloadRunner("SP", scale=TraceScale.TINY)
        got = runner.run_grid(policies, variants=[base, other])
        for index in range(2):
            for policy in policies:
                assert got[index][policy.label] == expected[index][policy.label]


class TestLaneEviction:
    def test_injected_lane_fault_evicts_only_that_lane(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_FAULTS", "raise@lane/SP/ctrl+tmap")
        expected = _scalar_reference("SP", TraceScale.TINY, 0, GRID_POLICIES)
        runner = WorkloadRunner("SP", scale=TraceScale.TINY)
        got = runner.run_grid(GRID_POLICIES)
        report = runner.last_grid_report
        assert report.evicted == ["ctrl+tmap"]
        for policy in GRID_POLICIES:
            assert got[policy.label] == expected[policy.label], policy.label


class TestLockstepProperty:
    """Property test: seeded-random (workload, seed, policy-subset,
    threshold) grids always match the scalar engine — per-lane cycle
    counts, cache statistics, and offload decisions included."""

    @settings(
        max_examples=6,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        workload=st.sampled_from(["SP", "BFS", "KM", "RD"]),
        seed=st.integers(min_value=0, max_value=2),
        picks=st.lists(
            st.sampled_from(GRID_POLICIES[1:]),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        threshold=st.sampled_from([0.90, 0.80]),
    )
    def test_random_grids_match_scalar(self, workload, seed, picks, threshold):
        policies: tuple = (BASELINE, *picks)
        configuration = _threshold_variant(threshold)
        os.environ["REPRO_NO_CACHE"] = "1"
        try:
            expected = _scalar_reference(
                workload, TraceScale.TINY, seed, policies, configuration
            )
            runner = WorkloadRunner(
                workload,
                scale=TraceScale.TINY,
                seed=seed,
                ndp_configuration=configuration,
            )
            got = runner.run_grid(policies)
        finally:
            os.environ.pop("REPRO_NO_CACHE", None)
        for policy in policies:
            lane = got[policy.label]
            reference = expected[policy.label]
            assert lane.cycles == reference.cycles
            assert lane.l1_load_miss_rate == reference.l1_load_miss_rate
            assert lane.l2_load_miss_rate == reference.l2_load_miss_rate
            assert lane.dram_row_hit_rate == reference.dram_row_hit_rate
            assert lane.offload == reference.offload
            assert lane == reference
