"""Tests for vault/row-buffer DRAM timing."""

import pytest

from repro import ndp_config
from repro.errors import SimulationError
from repro.memory.dram import MemoryStack, Vault, build_stacks
from repro.utils.simcore import Engine


def make_vault(engine=None, rate=8.0, penalty=16.0, banks=4):
    return Vault(
        engine or Engine(),
        name="v",
        bytes_per_cycle=rate,
        latency_cycles=0.0,
        row_bytes=4096,
        row_miss_penalty_cycles=penalty,
        banks=banks,
        interleave_bits=0,
    )


class TestVault:
    def test_first_access_activates(self):
        vault = make_vault()
        vault.service(0, 128)
        assert vault.stats.activations == 1
        assert vault.stats.row_hits == 0

    def test_same_row_hits(self):
        vault = make_vault()
        vault.service(0, 128)
        vault.service(128, 128)
        vault.service(256, 128)
        assert vault.stats.activations == 1
        assert vault.stats.row_hits == 2

    def test_row_miss_costs_more(self):
        engine = Engine()
        vault = make_vault(engine, rate=8.0, penalty=16.0)
        hit_end = vault.service(0, 128)  # activate: 128/8 + 16
        far_row = 64 * 4096  # same bank only if hashing collides; use delta
        assert hit_end == pytest.approx(16.0 + 16.0)

    def test_different_banks_keep_rows_open(self):
        vault = make_vault(banks=4)
        rows = [0, 1, 2, 3]  # consecutive rows hash to different banks
        for row in rows:
            vault.service(row * 4096, 128)
        activations_first_pass = vault.stats.activations
        for row in rows:
            vault.service(row * 4096 + 128, 128)
        assert vault.stats.activations == activations_first_pass

    def test_single_bank_thrash(self):
        vault = make_vault(banks=1)
        vault.service(0, 128)
        vault.service(4096, 128)
        vault.service(0, 128)
        assert vault.stats.activations == 3

    def test_serialization(self):
        engine = Engine()
        vault = make_vault(engine, rate=8.0, penalty=0.0)
        end1 = vault.service(0, 128)
        end2 = vault.service(128, 128)
        assert end2 == pytest.approx(end1 + 16.0)

    def test_bytes_accounting(self):
        vault = make_vault()
        vault.service(0, 128)
        vault.service(4096, 64)
        assert vault.stats.bytes_served == 192
        assert vault.stats.requests == 2

    def test_rejects_empty_request(self):
        with pytest.raises(SimulationError):
            make_vault().service(0, 0)

    def test_interleave_bits_widen_rows(self):
        # with 6 interleave bits a "row" spans 256 KB of byte addresses
        vault = Vault(
            Engine(), "v", 8.0, 0.0, 4096, 16.0, banks=4, interleave_bits=6
        )
        vault.service(0, 128)
        vault.service(100 * 1024, 128)  # same 256 KB row granule
        assert vault.stats.row_hits == 1


class TestMemoryStack:
    def test_build_from_config(self):
        config = ndp_config()
        stacks = build_stacks(Engine(), config)
        assert len(stacks) == 4
        assert len(stacks[0].vaults) == 16

    def test_aggregate_stats(self):
        config = ndp_config()
        stack = MemoryStack(Engine(), 0, config)
        stack.service(0, 0, 128)
        stack.service(1, 4096, 128)
        stack.service(0, 128, 128)
        assert stack.total_requests == 3
        assert stack.total_bytes == 384
        assert 0.0 <= stack.row_hit_rate <= 1.0

    def test_vault_index_checked(self):
        config = ndp_config()
        stack = MemoryStack(Engine(), 0, config)
        with pytest.raises(SimulationError):
            stack.service(99, 0, 128)
