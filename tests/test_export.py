"""Tests for the JSON/CSV export layer."""

import csv
import io
import json
import os

import pytest

from repro import NDP_CTRL_BMAP, TraceScale, WorkloadRunner
from repro.analysis.export import (
    figure_to_csv,
    figure_to_dict,
    result_to_dict,
    result_to_json,
    write_bundle,
    write_figure,
)
from repro.analysis.figures import FigureResult, section66
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def sp_result():
    runner = WorkloadRunner("SP", scale=TraceScale.TINY)
    return runner.run(NDP_CTRL_BMAP)


class TestResultExport:
    def test_dict_roundtrips_through_json(self, sp_result):
        payload = json.loads(result_to_json(sp_result))
        assert payload["workload"] == "SP"
        assert payload["policy"] == "ctrl+bmap"
        assert payload["ipc"] == pytest.approx(sp_result.ipc)

    def test_traffic_totals_consistent(self, sp_result):
        payload = result_to_dict(sp_result)
        traffic = payload["traffic"]
        assert traffic["off_chip_total"] == pytest.approx(
            traffic["gpu_memory_rx"]
            + traffic["gpu_memory_tx"]
            + traffic["memory_memory"]
        )

    def test_energy_total_consistent(self, sp_result):
        energy = result_to_dict(sp_result)["energy_j"]
        assert energy["total"] == pytest.approx(
            energy["sm"] + energy["links"] + energy["dram"]
        )

    def test_offload_decisions_serialized(self, sp_result):
        payload = result_to_dict(sp_result)
        assert payload["offload"]["decisions"].get("offloaded", 0) > 0


class TestFigureExport:
    def _figure(self):
        return FigureResult(
            figure_id="Figure X",
            title="test",
            columns=["a", "b"],
            rows={"s1": {"a": 1.0, "b": 2.0}, "s2": {"a": 3.0}},
        )

    def test_csv_shape(self):
        text = figure_to_csv(self._figure())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["series", "a", "b"]
        assert rows[1] == ["s1", "1.0", "2.0"]
        assert rows[2] == ["s2", "3.0", ""]

    def test_dict(self):
        payload = figure_to_dict(self._figure())
        assert payload["figure_id"] == "Figure X"
        assert payload["rows"]["s1"]["b"] == 2.0

    def test_write_figure(self, tmp_path):
        paths = write_figure(self._figure(), str(tmp_path))
        assert len(paths) == 3
        assert {os.path.splitext(p)[1] for p in paths} == {".txt", ".csv", ".json"}
        for path in paths:
            assert os.path.getsize(path) > 0

    def test_write_real_figure(self, tmp_path):
        paths = write_figure(section66(), str(tmp_path))
        with open(paths[2]) as handle:
            payload = json.load(handle)
        assert payload["rows"]["storage bits"]["analyzer/SM"] == 1920


class TestBundle:
    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_bundle(str(tmp_path), figure_names=["fig99"])

    def test_cheap_subset(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "TINY")
        seen = []
        paths = write_bundle(
            str(tmp_path), figure_names=["sec66", "fig5"], progress=seen.append
        )
        assert seen == ["sec66", "fig5"]
        assert len(paths) == 6
        names = {os.path.basename(p) for p in paths}
        assert "section6_6.txt" in names
        assert "figure5.csv" in names
