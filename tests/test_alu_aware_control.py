"""Tests for the ALU-aware aggressiveness extension (Section 6.4)."""

import dataclasses

import pytest

from repro import TraceScale, WorkloadRunner, ndp_config
from repro.compiler import OffloadMetadataTable, select_candidates
from repro.compiler.metadata import MetadataEntry
from repro.core.policies import NDP_CTRL_TMAP
from repro.core.simulator import Simulator
from repro.errors import ConfigError
from repro.ndp.controller import DecisionReason, OffloadController
from repro.workloads import make_workload


def aware_config(threshold=0.5):
    cfg = ndp_config()
    return dataclasses.replace(
        cfg,
        control=dataclasses.replace(
            cfg.control, alu_aware_control=True, alu_fraction_threshold=threshold
        ),
    )


class _FixedUtil:
    def __init__(self, value):
        self.value = value

    def utilization(self):
        return self.value


def entry(alu_fraction):
    return MetadataEntry(
        block_id=0,
        begin_pc=0,
        end_pc=4,
        live_in=(),
        live_out=(),
        saves_tx=True,
        saves_rx=True,
        condition=None,
        alu_fraction=alu_fraction,
    )


class TestMetadataAluFraction:
    def test_fraction_computed_from_candidate(self):
        selection = select_candidates(make_workload("RD").build_kernel())
        table = OffloadMetadataTable(selection)
        fraction = table.lookup(0).alu_fraction
        candidate = selection.candidates[0]
        expected = candidate.n_alu / candidate.instructions_per_iteration
        assert fraction == pytest.approx(expected)
        assert fraction >= 0.5  # RD's block is ALU-rich

    def test_sp_is_memory_dominated(self):
        selection = select_candidates(make_workload("SP").build_kernel())
        table = OffloadMetadataTable(selection)
        assert table.lookup(0).alu_fraction < 0.7


class TestControllerCheck:
    def test_refuses_alu_rich_block_on_busy_pipeline(self):
        cfg = aware_config(threshold=0.5)
        controller = OffloadController(
            cfg, None, dynamic_control=True, issue_monitors=[_FixedUtil(0.99)] * 4
        )
        decision = controller.decide(entry(alu_fraction=0.8), 0, None)
        assert decision.reason is DecisionReason.STACK_COMPUTE_BUSY

    def test_accepts_memory_block_on_busy_pipeline(self):
        cfg = aware_config(threshold=0.5)
        controller = OffloadController(
            cfg, None, dynamic_control=True, issue_monitors=[_FixedUtil(0.99)] * 4
        )
        assert controller.decide(entry(alu_fraction=0.2), 0, None).offload

    def test_accepts_alu_block_on_idle_pipeline(self):
        cfg = aware_config(threshold=0.5)
        controller = OffloadController(
            cfg, None, dynamic_control=True, issue_monitors=[_FixedUtil(0.1)] * 4
        )
        assert controller.decide(entry(alu_fraction=0.8), 0, None).offload

    def test_disabled_without_monitors(self):
        cfg = aware_config()
        controller = OffloadController(cfg, None, dynamic_control=True)
        assert controller.decide(entry(alu_fraction=0.9), 0, None).offload

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            aware_config(threshold=1.5).validate()


class TestEndToEnd:
    def test_system_wires_issue_monitors(self):
        from repro.core.system import NDPSystem

        system = NDPSystem(aware_config(), NDP_CTRL_TMAP)
        assert system.controller.issue_monitors is not None
        assert len(system.controller.issue_monitors) == 4

    def test_simulation_completes_with_extension(self):
        runner = WorkloadRunner("RD", scale=TraceScale.TINY)
        result = Simulator(runner.trace, aware_config(), NDP_CTRL_TMAP).run()
        assert result.cycles > 0
        assert result.warp_instructions == runner.trace.total_instructions
