"""Static checks over the benchmark harness itself: every bench module
imports cleanly and every paper experiment has a bench covering it."""

import importlib.util
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")


def bench_files():
    return sorted(
        f for f in os.listdir(BENCH_DIR) if f.startswith("bench_") and f.endswith(".py")
    )


@pytest.fixture(autouse=True)
def _bench_on_path():
    sys.path.insert(0, os.path.abspath(BENCH_DIR))
    yield
    sys.path.remove(os.path.abspath(BENCH_DIR))


class TestHarnessCompleteness:
    def test_every_paper_experiment_has_a_bench(self):
        names = set(bench_files())
        required = {
            "bench_fig02_ideal_ndp.py",
            "bench_fig03_ideal_mapping.py",
            "bench_fig05_fixed_offset.py",
            "bench_fig06_learning.py",
            "bench_fig08_speedup.py",
            "bench_fig09_traffic.py",
            "bench_fig10_energy.py",
            "bench_fig11_warp_capacity.py",
            "bench_fig12_warp_traffic.py",
            "bench_fig13_internal_bw.py",
            "bench_sec65_cross_stack_bw.py",
            "bench_sec66_area.py",
            "bench_table1_config.py",
        }
        missing = required - names
        assert not missing, f"missing benches for: {sorted(missing)}"

    def test_ablation_benches_present(self):
        names = set(bench_files())
        assert "bench_ablation_compiler.py" in names
        assert "bench_ablation_control.py" in names
        assert "bench_ablation_alu_control.py" in names
        assert "bench_ablation_translation.py" in names
        assert "bench_ablation_input_sets.py" in names

    @pytest.mark.parametrize("filename", bench_files())
    def test_bench_module_imports(self, filename):
        path = os.path.join(BENCH_DIR, filename)
        spec = importlib.util.spec_from_file_location(filename[:-3], path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        test_functions = [n for n in dir(module) if n.startswith("test_")]
        assert test_functions, f"{filename} defines no tests"

    @pytest.mark.parametrize("filename", bench_files())
    def test_bench_docstring_cites_the_paper(self, filename):
        with open(os.path.join(BENCH_DIR, filename)) as handle:
            source = handle.read()
        assert '"""' in source
        lowered = source.lower()
        assert any(
            marker in lowered
            for marker in ("figure", "section", "table", "paper")
        ), f"{filename} does not say which experiment it reproduces"
