"""Tests for policies, results, the system builder, and experiment drivers."""

import pytest

from repro import (
    BASELINE,
    FIGURE8_GRID,
    IDEAL_NDP,
    NDP_CTRL_BMAP,
    NDP_CTRL_TMAP,
    TOM,
    TraceScale,
    WorkloadRunner,
    baseline_config,
    ndp_config,
)
from repro.core.policies import MappingPolicy, OffloadPolicy, RunPolicy
from repro.core.results import OffloadSummary, SimulationResult
from repro.core.system import NDPSystem
from repro.errors import AnalysisError, ConfigError
from repro.energy.model import EnergyBreakdown
from repro.interconnect.links import TrafficBreakdown


class TestPolicies:
    def test_labels(self):
        assert BASELINE.label == "baseline"
        assert TOM.label == "ctrl+tmap"
        assert NDP_CTRL_BMAP.label == "ctrl+bmap"
        assert IDEAL_NDP.label == "ideal+bmap"

    def test_tom_is_ctrl_tmap(self):
        assert TOM is NDP_CTRL_TMAP
        assert TOM.dynamic_control
        assert TOM.mapping is MappingPolicy.TMAP

    def test_figure8_grid(self):
        labels = [p.label for p in FIGURE8_GRID]
        assert labels == [
            "no-ctrl+bmap", "no-ctrl+tmap", "ctrl+bmap", "ctrl+tmap",
        ]

    def test_baseline_cannot_use_tmap(self):
        with pytest.raises(ConfigError):
            RunPolicy(OffloadPolicy.NONE, MappingPolicy.TMAP)

    def test_offloads_property(self):
        assert not BASELINE.offloads
        assert TOM.offloads and IDEAL_NDP.offloads


class TestResults:
    def _result(self, cycles=100.0, instructions=1000):
        return SimulationResult(
            workload="X",
            policy_label="baseline",
            cycles=cycles,
            warp_instructions=instructions,
            warp_size=32,
            traffic=TrafficBreakdown(100.0, 50.0, 25.0, 0.0),
            energy=EnergyBreakdown(1.0, 0.5, 0.25),
            offload=OffloadSummary(0, 0, {}, 0, instructions, 0),
        )

    def test_ipc(self):
        result = self._result(cycles=100.0, instructions=10)
        assert result.thread_instructions == 320
        assert result.ipc == pytest.approx(3.2)

    def test_speedup(self):
        base = self._result(cycles=200.0)
        fast = self._result(cycles=100.0)
        assert fast.speedup_over(base) == pytest.approx(2.0)

    def test_speedup_requires_same_trace(self):
        base = self._result(instructions=1000)
        other = self._result(instructions=999)
        with pytest.raises(AnalysisError):
            other.speedup_over(base)

    def test_ratios(self):
        base = self._result()
        assert base.traffic_ratio_over(base) == pytest.approx(1.0)
        assert base.energy_ratio_over(base) == pytest.approx(1.0)

    def test_offload_summary_fractions(self):
        summary = OffloadSummary(10, 4, {"offloaded": 4}, 400, 1000, 12)
        assert summary.offload_rate == pytest.approx(0.4)
        assert summary.offloaded_instruction_fraction == pytest.approx(0.4)

    def test_summary_line_contains_key_fields(self):
        line = self._result().summary_line()
        assert "baseline" in line and "ipc" in line


class TestNDPSystem:
    def test_baseline_has_no_stack_sms(self):
        system = NDPSystem(baseline_config(), BASELINE)
        assert len(system.main_sms) == 68
        assert system.stack_sms == []
        assert system.n_sms_powered == 68

    def test_ndp_assembly(self):
        system = NDPSystem(ndp_config(), NDP_CTRL_BMAP)
        assert len(system.main_sms) == 64
        assert len(system.stack_sms) == 4
        assert system.n_sms_powered == 68
        assert system.monitor is not None

    def test_uncontrolled_has_no_monitor(self):
        from repro import NDP_NOCTRL_BMAP

        system = NDPSystem(ndp_config(), NDP_NOCTRL_BMAP)
        assert system.monitor is None

    def test_ideal_unbounded_stack_slots(self):
        system = NDPSystem(ndp_config(), IDEAL_NDP)
        assert system.stack_sms[0].slots.capacity > 1_000_000
        assert system.controller.max_pending > 1_000_000

    def test_policy_config_mismatch(self):
        with pytest.raises(ConfigError):
            NDPSystem(baseline_config(), NDP_CTRL_BMAP)


class TestWorkloadRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return WorkloadRunner("SP", scale=TraceScale.TINY, seed=0)

    def test_baseline_cached(self, runner):
        first = runner.baseline()
        second = runner.baseline()
        assert first is second

    def test_speedup_positive(self, runner):
        assert runner.speedup(NDP_CTRL_BMAP) > 0

    def test_ratios(self, runner):
        assert 0 < runner.traffic_ratio(NDP_CTRL_BMAP) < 2.0
        assert 0 < runner.energy_ratio(NDP_CTRL_BMAP) < 2.0

    def test_custom_config_not_cached(self, runner):
        custom = ndp_config(warp_capacity_multiplier=2)
        result = runner.run(NDP_CTRL_BMAP, configuration=custom)
        cached = runner.run(NDP_CTRL_BMAP)
        assert result is not cached

    def test_accepts_model_instance(self):
        from repro import make_workload

        runner = WorkloadRunner(make_workload("SP"), scale=TraceScale.TINY)
        assert runner.model.abbr == "SP"


class TestSuiteHelpers:
    def test_run_suite_and_speedups(self):
        from repro import run_suite, suite_speedups, suite_ratios

        results = run_suite(
            (NDP_CTRL_BMAP,), scale=TraceScale.TINY, workloads=["SP", "RD"]
        )
        assert set(results) == {"SP", "RD"}
        assert set(results["SP"]) == {"baseline", "ctrl+bmap"}
        speedups = suite_speedups(results, "ctrl+bmap")
        assert set(speedups) == {"SP", "RD", "AVG"}
        ratios = suite_ratios(results, "ctrl+bmap", metric="traffic")
        assert all(v > 0 for v in ratios.values())

    def test_suite_ratio_unknown_metric(self):
        from repro import run_suite, suite_ratios

        results = run_suite((), scale=TraceScale.TINY, workloads=["SP"])
        with pytest.raises(ConfigError):
            suite_ratios(results, "baseline", metric="bogus")
