"""Tests for the access-pattern primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.memory.allocation import MemoryAllocationTable
from repro.trace.patterns import (
    AccessContext,
    BroadcastPattern,
    ButterflyPattern,
    LinearPattern,
    LocalRandomPattern,
    MixturePattern,
    PhaseShiftPattern,
    RandomPattern,
    StridedPattern,
)


def make_table():
    table = MemoryAllocationTable()
    table.allocate("a", 1 << 22)
    table.allocate("b", 1 << 22)
    return table


def ctx(warp_id=0, iteration=0, instance=0, total_instances=100, lanes=32, seed=0,
        total_iterations=8):
    return AccessContext(
        warp_id=warp_id,
        instance_index=instance,
        total_instances=total_instances,
        iteration=iteration,
        total_iterations=total_iterations,
        lane_ids=np.arange(lanes, dtype=np.int64),
        rng=np.random.default_rng(seed),
    )


class TestBinding:
    def test_unbound_pattern_raises(self):
        pattern = LinearPattern("a")
        with pytest.raises(TraceError):
            pattern.lane_addresses(ctx())

    def test_bind_returns_self(self):
        pattern = LinearPattern("a")
        assert pattern.bind(make_table()) is pattern

    def test_unknown_array(self):
        from repro.errors import AllocationError

        with pytest.raises(AllocationError):
            LinearPattern("missing").bind(make_table())


class TestLinearPattern:
    def test_consecutive_lanes_consecutive_elements(self):
        pattern = LinearPattern("a").bind(make_table())
        addresses = pattern.lane_addresses(ctx())
        assert list(np.diff(addresses)) == [4] * 31

    def test_iteration_advances_by_warp_width(self):
        pattern = LinearPattern("a").bind(make_table())
        first = pattern.lane_addresses(ctx(iteration=0))
        second = pattern.lane_addresses(ctx(iteration=1))
        assert second[0] - first[0] == 32 * 4

    def test_fixed_span_tiles_warps(self):
        pattern = LinearPattern("a", span_elements=256).bind(make_table())
        w0 = pattern.lane_addresses(ctx(warp_id=0))
        w1 = pattern.lane_addresses(ctx(warp_id=1))
        assert w1[0] - w0[0] == 256 * 4

    def test_offset_elements(self):
        table = make_table()
        base = LinearPattern("a").bind(table)
        shifted = LinearPattern("a", offset_elements=3).bind(table)
        assert shifted.lane_addresses(ctx())[0] - base.lane_addresses(ctx())[0] == 12

    def test_fixed_offset_between_arrays(self):
        # same index into two arrays -> constant inter-array delta
        table = make_table()
        a = LinearPattern("a", span_elements=256).bind(table)
        b = LinearPattern("b", span_elements=256).bind(table)
        deltas = {
            int(b.lane_addresses(ctx(warp_id=w, iteration=i))[0]
                - a.lane_addresses(ctx(warp_id=w, iteration=i))[0])
            for w in range(4)
            for i in range(4)
        }
        assert len(deltas) == 1

    def test_wraps_inside_array(self):
        table = make_table()
        pattern = LinearPattern("a").bind(table)
        addresses = pattern.lane_addresses(ctx(warp_id=10**6))
        entry = table["a"]
        assert all(entry.start <= a < entry.end for a in addresses)


class TestOtherPatterns:
    def test_strided_spreads_lanes(self):
        pattern = StridedPattern("a", stride_elements=64).bind(make_table())
        addresses = pattern.lane_addresses(ctx())
        assert np.all(np.diff(addresses) == 64 * 4)

    def test_strided_rejects_bad_stride(self):
        with pytest.raises(TraceError):
            StridedPattern("a", stride_elements=0)

    def test_random_within_bounds(self):
        table = make_table()
        pattern = RandomPattern("a").bind(table)
        addresses = pattern.lane_addresses(ctx())
        entry = table["a"]
        assert all(entry.start <= a < entry.end for a in addresses)

    def test_random_is_seed_deterministic(self):
        pattern = RandomPattern("a").bind(make_table())
        first = pattern.lane_addresses(ctx(seed=3))
        second = pattern.lane_addresses(ctx(seed=3))
        assert np.array_equal(first, second)

    def test_local_random_stays_in_window(self):
        table = make_table()
        pattern = LocalRandomPattern("a", window_elements=1024).bind(table)
        addresses = pattern.lane_addresses(ctx(warp_id=3))
        entry = table["a"]
        window_base = entry.start + 3 * 1024 * 4
        assert all(window_base <= a < window_base + 1024 * 4 for a in addresses)

    def test_local_random_rejects_empty_window(self):
        with pytest.raises(TraceError):
            LocalRandomPattern("a", window_elements=0)

    def test_broadcast_single_line(self):
        pattern = BroadcastPattern("a", record_elements=1).bind(make_table())
        addresses = pattern.lane_addresses(ctx(iteration=5))
        assert len(set(addresses.tolist())) == 1

    def test_broadcast_advances_with_iteration(self):
        pattern = BroadcastPattern("a", record_elements=1).bind(make_table())
        i0 = pattern.lane_addresses(ctx(iteration=0))[0]
        i1 = pattern.lane_addresses(ctx(iteration=1))[0]
        assert i1 - i0 == 4

    def test_butterfly_partner_distance_constant_within_instance(self):
        pattern = ButterflyPattern("a").bind(make_table())
        base = LinearPattern("a").bind(make_table())
        context = ctx(instance=3)
        partner = pattern.lane_addresses(context)
        assert partner.shape == (32,)

    def test_butterfly_stage_varies_by_instance(self):
        pattern = ButterflyPattern("a", n_stages=4).bind(make_table())
        first = pattern.lane_addresses(ctx(instance=0))
        second = pattern.lane_addresses(ctx(instance=1))
        assert not np.array_equal(first, second)


class TestComposites:
    def test_mixture_probability_extremes(self):
        table = make_table()
        regular = LinearPattern("a")
        random = RandomPattern("a")
        never = MixturePattern(regular, random, p_random=0.0).bind(table)
        always = MixturePattern(LinearPattern("a"), RandomPattern("a"), 1.0).bind(table)
        lin = LinearPattern("a").bind(table)
        assert np.array_equal(never.lane_addresses(ctx()), lin.lane_addresses(ctx()))
        # always-random output is extremely unlikely to equal the linear scan
        assert not np.array_equal(
            always.lane_addresses(ctx()), lin.lane_addresses(ctx())
        )

    def test_mixture_validates_probability(self):
        with pytest.raises(TraceError):
            MixturePattern(LinearPattern("a"), RandomPattern("a"), 1.5)

    def test_phase_shift_switches_pattern(self):
        table = make_table()
        early = LinearPattern("a")
        late = LinearPattern("a", offset_elements=1000)
        shifted = PhaseShiftPattern(early, late, shift_at=0.5).bind(table)
        lin = LinearPattern("a").bind(table)
        before = shifted.lane_addresses(ctx(instance=10, total_instances=100))
        after = shifted.lane_addresses(ctx(instance=90, total_instances=100))
        assert np.array_equal(before, lin.lane_addresses(ctx()))
        assert after[0] - before[0] == 1000 * 4

    def test_phase_shift_validates_fraction(self):
        with pytest.raises(TraceError):
            PhaseShiftPattern(LinearPattern("a"), LinearPattern("a"), 1.0)

    @given(st.integers(0, 500), st.integers(0, 15), st.integers(1, 32))
    def test_all_patterns_stay_in_bounds(self, warp, iteration, lanes):
        table = make_table()
        entry = table["a"]
        patterns = [
            LinearPattern("a").bind(table),
            StridedPattern("a", 16).bind(table),
            LocalRandomPattern("a", 512).bind(table),
            BroadcastPattern("a").bind(table),
            ButterflyPattern("a").bind(table),
        ]
        context = ctx(warp_id=warp, iteration=iteration, lanes=lanes)
        for pattern in patterns:
            addresses = pattern.lane_addresses(context)
            assert addresses.shape == (lanes,)
            assert all(entry.start <= a < entry.end for a in addresses)
