"""CLI-level tests: exit codes, JSON schema, baseline workflow."""

import json
from pathlib import Path

from repro.lint.baseline import PLACEHOLDER_REASON
from repro.lint.cli import JSON_SCHEMA_VERSION, main

FIXTURES = Path(__file__).parent / "data" / "lint"
CASES = FIXTURES / "cases"


def write_offender(tmp_path, name="offender.py"):
    path = tmp_path / name
    path.write_text("items = {1, 2}\nvalues = list(items)\n")
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main([str(clean), "--no-baseline"]) == 0

    def test_findings_exit_one(self, tmp_path, capsys):
        assert main([str(write_offender(tmp_path)), "--no-baseline"]) == 1

    def test_missing_path_exits_two(self, capsys):
        assert main([str(Path("no") / "such" / "path.py")]) == 2

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main([str(clean), "--rules", "ND42", "--no-baseline"]) == 2

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        garbage = tmp_path / "baseline.json"
        garbage.write_text("not json")
        assert main([str(clean), "--baseline", str(garbage)]) == 2

    def test_exhausted_budget_exits_four(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert (
            main([str(clean), "--no-baseline", "--max-seconds", "0"]) == 4
        )

    def test_findings_gate_before_runtime_guard(self, tmp_path, capsys):
        offender = write_offender(tmp_path)
        code = main([str(offender), "--no-baseline", "--max-seconds", "0"])
        assert code == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("ND01", "ND02", "ND03", "PROTO", "PAR"):
            assert rule in out


class TestJsonOutput:
    def test_schema(self, tmp_path, capsys):
        offender = write_offender(tmp_path)
        code = main([str(offender), "--no-baseline", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {
            "active": 1, "suppressed": 0, "baselined": 0,
        }
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        assert finding["rule"] == "ND01"
        assert finding["line"] == 2

    def test_clean_json(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main([str(clean), "--no-baseline", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []


class TestBaselineWorkflow:
    def test_update_then_gate_until_reason_written(self, tmp_path, capsys):
        offender = write_offender(tmp_path)
        baseline = tmp_path / "baseline.json"

        # 1. Grandfather the current finding.
        assert main(
            [str(offender), "--baseline", str(baseline), "--baseline-update"]
        ) == 0
        payload = json.loads(baseline.read_text())
        (entry,) = payload["entries"]
        assert entry["rule"] == "ND01"
        assert entry["count"] == 1
        assert entry["reason"] == PLACEHOLDER_REASON

        # 2. The FIXME placeholder still fails the gate.
        capsys.readouterr()
        assert main([str(offender), "--baseline", str(baseline)]) == 1
        assert "no written reason" in capsys.readouterr().out

        # 3. A real reason makes the finding baselined, gate green.
        entry["reason"] = "grandfathered: order feeds a set again"
        baseline.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main([str(offender), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_count_budget_is_enforced(self, tmp_path, capsys):
        offender = tmp_path / "offender.py"
        offender.write_text("items = {1, 2}\nvalues = list(items)\n")
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(offender), "--baseline", str(baseline), "--baseline-update"]
        ) == 0
        payload = json.loads(baseline.read_text())
        payload["entries"][0]["reason"] = "known; burn-down tracked"
        baseline.write_text(json.dumps(payload))
        # An (N+1)-th identical finding exceeds the budget and gates.
        offender.write_text(
            "items = {1, 2}\nvalues = list(items)\nmore = list(items)\n"
        )
        assert main([str(offender), "--baseline", str(baseline)]) == 1

    def test_stale_entry_is_a_notice_not_a_failure(self, tmp_path, capsys):
        offender = write_offender(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(offender), "--baseline", str(baseline), "--baseline-update"]
        ) == 0
        payload = json.loads(baseline.read_text())
        payload["entries"][0]["reason"] = "about to be fixed"
        baseline.write_text(json.dumps(payload))
        offender.write_text("items = {1, 2}\nvalues = sorted(items)\n")
        capsys.readouterr()
        assert main([str(offender), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_checked_in_baseline_is_valid_and_empty(self):
        """The repo ships a clean tree: its baseline must stay empty so
        new findings gate immediately."""
        repo_baseline = Path(__file__).parent.parent / "tools" / "lint_baseline.json"
        payload = json.loads(repo_baseline.read_text())
        assert payload["version"] == 1
        assert payload["entries"] == []
