"""Seeded-mutation checks: inject each hazard class into a scratch copy
of the clean fixture tree and prove the linter catches it.

This is the acceptance test for the whole suite — a rule that passes its
unit fixtures but misses the hazard *in situ* (wrong path matching,
wrong scope walking, parser too strict) fails here.
"""

import shutil
from pathlib import Path

import pytest

from repro.lint.runner import run_lint

FIXTURE_TREE = Path(__file__).parent / "data" / "lint" / "tree"


@pytest.fixture
def scratch(tmp_path):
    """A disposable copy of the clean mini repro tree."""
    target = tmp_path / "scratch"
    shutil.copytree(FIXTURE_TREE, target)
    assert run_lint([target], root=target).findings == []
    return target


def rules_hit(target):
    return {f.rule for f in run_lint([target], root=target).findings}


class TestSeededHazards:
    def test_unsorted_set_iteration_caught(self, scratch):
        victim = scratch / "repro" / "core" / "knobs.py"
        victim.write_text(
            victim.read_text()
            + "\n\ndef leak(stacks):\n"
            "    pages = set(stacks)\n"
            "    return [p * 2 for p in pages]\n"
        )
        assert "ND01" in rules_hit(scratch)

    def test_environ_read_in_core_caught(self, scratch):
        victim = scratch / "repro" / "core" / "knobs.py"
        victim.write_text(
            "import os\n\n\ndef scale():\n"
            '    return os.environ.get("REPRO_SCALE", "SMALL")\n'
        )
        assert "ND03" in rules_hit(scratch)

    def test_unregistered_request_dataclass_caught(self, scratch):
        simcore = scratch / "repro" / "utils" / "simcore.py"
        simcore.write_text(
            simcore.read_text()
            + "\n\n@dataclass(frozen=True)\nclass Sleep:\n    delay: float\n"
        )
        findings = run_lint([scratch], root=scratch).findings
        assert any(
            f.rule == "PAR" and "Sleep" in f.message and "_DISPATCH" in f.message
            for f in findings
        )

    def test_direct_engine_construction_caught(self, scratch):
        victim = scratch / "repro" / "core" / "runner.py"
        victim.write_text(
            "from ..utils.simcore import Engine\n\n\n"
            "def boot():\n    return Engine()\n"
        )
        assert "PROTO" in rules_hit(scratch)

    def test_wallclock_in_core_caught(self, scratch):
        victim = scratch / "repro" / "core" / "stamp.py"
        victim.write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n"
        )
        assert "ND02" in rules_hit(scratch)


class TestParityMutations:
    def test_register_order_mismatch_caught(self, scratch):
        accel = scratch / "repro" / "accel" / "__init__.py"
        accel.write_text(
            accel.read_text().replace(
                "_core._register(SimulationError, simcore.Timeout, simcore.Acquire)",
                "_core._register(SimulationError, simcore.Acquire, simcore.Timeout)",
            )
        )
        findings = run_lint([scratch], root=scratch).findings
        assert any(
            f.rule == "PAR" and "_register order" in f.message for f in findings
        )

    def test_missing_c_global_caught(self, scratch):
        core = scratch / "repro" / "accel" / "_core.c"
        core.write_text(
            core.read_text().replace(
                "static PyObject *g_req_acquire;\n", ""
            )
        )
        findings = run_lint([scratch], root=scratch).findings
        assert any(
            f.rule == "PAR" and "g_req" in f.message for f in findings
        )

    def test_missing_member_caught(self, scratch):
        core = scratch / "repro" / "accel" / "_core.c"
        core.write_text(
            core.read_text().replace(
                '    {"triggered", T_BOOL, 0, 0, "has the event fired"},\n', ""
            )
        )
        findings = run_lint([scratch], root=scratch).findings
        assert any(
            f.rule == "PAR" and "triggered" in f.message for f in findings
        )

    def test_register_arity_mismatch_caught(self, scratch):
        core = scratch / "repro" / "accel" / "_core.c"
        core.write_text(
            core.read_text().replace('"OOO"', '"OO"')
        )
        findings = run_lint([scratch], root=scratch).findings
        assert any(
            f.rule == "PAR" and "core_register unpacks" in f.message
            for f in findings
        )

    def test_missing_core_c_skips_with_notice(self, scratch):
        """Satellite 6: a source checkout without _core.c must not crash
        or fail — the C-side checks downgrade to a notice."""
        (scratch / "repro" / "accel" / "_core.c").unlink()
        result = run_lint([scratch], root=scratch)
        assert result.findings == []
        assert any("_core.c" in n and "skipped" in n for n in result.notices)

    def test_missing_simcore_skips_with_notice(self, scratch):
        (scratch / "repro" / "utils" / "simcore.py").unlink()
        result = run_lint([scratch], rules=["PAR"], root=scratch)
        assert result.findings == []
        assert any("parity checks skipped" in n for n in result.notices)
