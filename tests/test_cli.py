"""Tests for the repro-tom command-line interface."""

import pytest

from repro.cli import main


class TestRun:
    def test_run_baseline(self, capsys):
        assert main(["run", "SP", "--policy", "baseline", "--scale", "TINY"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "ipc" in out

    def test_run_tom(self, capsys):
        assert main(["run", "SP", "--policy", "ctrl+tmap", "--scale", "TINY"]) == 0
        out = capsys.readouterr().out
        assert "speedup over baseline" in out
        assert "offload decisions" in out

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "NOPE"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "SP", "--policy", "bogus"])


class TestSuite:
    def test_partial_suite(self, capsys):
        assert main(["suite", "--scale", "TINY", "--workloads", "SP", "RD"]) == 0
        out = capsys.readouterr().out
        assert "SP:" in out and "RD:" in out
        assert "ctrl+tmap" in out


class TestFigure:
    def test_sec66(self, capsys):
        assert main(["figure", "sec66"]) == 0
        out = capsys.readouterr().out
        assert "Section 6.6" in out and "0.11" in out

    def test_fig5_tiny(self, capsys, monkeypatch):
        assert main(["figure", "fig5", "--scale", "TINY"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestInspect:
    def test_inspect_lib(self, capsys):
        assert main(["inspect", "LIB"]) == 0
        out = capsys.readouterr().out
        assert ".kernel portfolio_b" in out
        assert "offloading candidates (2):" in out
        assert "conditional" in out

    @pytest.mark.parametrize("workload", ["BP", "BFS", "RD"])
    def test_inspect_others(self, capsys, workload):
        assert main(["inspect", workload]) == 0
        assert "offloading candidates" in capsys.readouterr().out


class TestNoCommand:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
