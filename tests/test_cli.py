"""Tests for the repro-tom command-line interface."""

import pytest

from repro.cli import main


class TestRun:
    def test_run_baseline(self, capsys):
        assert main(["run", "SP", "--policy", "baseline", "--scale", "TINY"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "ipc" in out

    def test_run_tom(self, capsys):
        assert main(["run", "SP", "--policy", "ctrl+tmap", "--scale", "TINY"]) == 0
        out = capsys.readouterr().out
        assert "speedup over baseline" in out
        assert "offload decisions" in out

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "NOPE"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "SP", "--policy", "bogus"])


class TestSuite:
    def test_partial_suite(self, capsys):
        assert main(["suite", "--scale", "TINY", "--workloads", "SP", "RD"]) == 0
        out = capsys.readouterr().out
        assert "SP:" in out and "RD:" in out
        assert "ctrl+tmap" in out

    def test_failed_jobs_exit_3_then_resume(
        self, capsys, monkeypatch, tmp_path
    ):
        """A suite with a permanently failing job completes with
        partial results, prints a failure summary, and exits 3; a
        ``--resume`` run after the fault clears re-runs only the failed
        point and exits 0."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_FAULTS", "raise@job/SP")
        manifest = str(tmp_path / "run.jsonl")
        code = main(
            ["suite", "--scale", "TINY", "--workloads", "SP", "RD",
             "--max-retries", "0", "--manifest", manifest]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "RD:" in captured.out  # the healthy workload still printed
        assert "1 job(s) failed" in captured.err
        assert "--resume" in captured.err

        monkeypatch.delenv("REPRO_FAULTS")
        code = main(
            ["suite", "--scale", "TINY", "--workloads", "SP", "RD",
             "--max-retries", "0", "--manifest", manifest, "--resume"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "SP:" in captured.out and "RD:" in captured.out

    def test_resume_requires_manifest(self, capsys):
        assert main(["suite", "--scale", "TINY", "--resume"]) == 2
        assert "--resume requires --manifest" in capsys.readouterr().err


class TestFigure:
    def test_sec66(self, capsys):
        assert main(["figure", "sec66"]) == 0
        out = capsys.readouterr().out
        assert "Section 6.6" in out and "0.11" in out

    def test_fig5_tiny(self, capsys, monkeypatch):
        assert main(["figure", "fig5", "--scale", "TINY"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestInspect:
    def test_inspect_lib(self, capsys):
        assert main(["inspect", "LIB"]) == 0
        out = capsys.readouterr().out
        assert ".kernel portfolio_b" in out
        assert "offloading candidates (2):" in out
        assert "conditional" in out

    @pytest.mark.parametrize("workload", ["BP", "BFS", "RD"])
    def test_inspect_others(self, capsys, workload):
        assert main(["inspect", workload]) == 0
        assert "offloading candidates" in capsys.readouterr().out


class TestNoCommand:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
