"""Tests for packet sizing and the link fabric."""

import pytest

from repro import ndp_config
from repro.config import MessageConfig
from repro.errors import SimulationError
from repro.interconnect.links import LinkFabric
from repro.interconnect.packets import PacketSizes
from repro.utils.simcore import Engine

CFG = ndp_config()


class TestPacketSizes:
    packets = PacketSizes(MessageConfig())

    def test_load_request_is_addresses(self):
        assert self.packets.load_request(1) == 4
        assert self.packets.load_request(3) == 12

    def test_load_reply_is_lines(self):
        assert self.packets.load_reply(2) == 256

    def test_store_request_has_data_words(self):
        # 2 lines + 32 active lanes: 2 addresses + 32 words
        assert self.packets.store_request(2, 32) == 2 * 4 + 32 * 4

    def test_store_ack(self):
        assert self.packets.store_ack(4) == 4

    def test_unit_ratios_match_section_311(self):
        messages = MessageConfig()
        # address == data word == register == 4x ack
        assert messages.address_bytes == messages.word_bytes
        assert messages.address_bytes == messages.register_bytes
        assert messages.address_bytes == 4 * messages.ack_bytes
        assert messages.sc_ratio == 32

    def test_offload_request_scales_with_live_ins(self):
        none = self.packets.offload_request(0, 32)
        six = self.packets.offload_request(6, 32)
        assert six - none == 6 * 4 * 32

    def test_offload_ack_includes_dirty_list(self):
        clean = self.packets.offload_ack(0, 32, 0)
        dirty = self.packets.offload_ack(0, 32, 10)
        assert dirty - clean == 10 * 4

    def test_rejects_degenerate(self):
        with pytest.raises(SimulationError):
            self.packets.load_request(0)
        with pytest.raises(SimulationError):
            self.packets.store_request(1, 0)
        with pytest.raises(SimulationError):
            self.packets.offload_request(-1, 32)
        with pytest.raises(SimulationError):
            self.packets.offload_ack(0, 32, -1)


class TestLinkFabric:
    def test_topology(self):
        fabric = LinkFabric(Engine(), CFG)
        assert len(fabric.tx) == 4
        assert len(fabric.rx) == 4
        assert len(fabric.cross) == 12  # fully connected, unidirectional

    def test_aggregate_bandwidth_split(self):
        fabric = LinkFabric(Engine(), CFG)
        per_direction = CFG.bytes_per_cycle(CFG.links.gpu_stack_gbps / 2)
        assert fabric.tx[0].rate == pytest.approx(per_direction)
        assert fabric.rx[0].rate == pytest.approx(per_direction)

    def test_cross_link_lookup(self):
        fabric = LinkFabric(Engine(), CFG)
        assert fabric.cross_link(0, 1) is fabric.cross[(0, 1)]
        assert fabric.cross_link(0, 1) is not fabric.cross_link(1, 0)
        with pytest.raises(SimulationError):
            fabric.cross_link(1, 1)

    def test_traffic_breakdown(self):
        engine = Engine()
        fabric = LinkFabric(engine, CFG)
        fabric.tx[0].reserve(100)
        fabric.rx[1].reserve(200)
        fabric.cross_link(0, 2).reserve(50)
        fabric.pcie.reserve(30)
        traffic = fabric.traffic()
        assert traffic.gpu_memory_tx == 100
        assert traffic.gpu_memory_rx == 200
        assert traffic.memory_memory == 50
        assert traffic.pcie == 30
        assert traffic.off_chip_total == 350

    def test_active_bits(self):
        engine = Engine()
        fabric = LinkFabric(engine, CFG)
        fabric.tx[0].reserve(10)
        assert fabric.active_bits() == 80.0

    def test_idle_bit_cycles_decreases_with_traffic(self):
        engine = Engine()
        fabric = LinkFabric(engine, CFG)
        idle_before = fabric.idle_bit_cycles(1000.0)
        fabric.tx[0].reserve(1000)
        idle_after = fabric.idle_bit_cycles(1000.0)
        assert idle_after < idle_before
