"""Tests for the GPU-side structures: coalescer, warp tasks, SMs."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import ndp_config
from repro.errors import TraceError
from repro.gpu.coalescer import Coalescer
from repro.gpu.sm import build_main_sms, build_stack_sms
from repro.gpu.warp import (
    CandidateSegment,
    PlainSegment,
    WarpAccess,
    WarpTask,
    count_candidate_instances,
    total_trace_instructions,
)
from repro.utils.simcore import Engine

CFG = ndp_config()


class TestCoalescer:
    def test_fully_coalesced_warp(self):
        coalescer = Coalescer(128)
        lanes = np.arange(32, dtype=np.int64) * 4  # 32 floats = 1 line
        access = coalescer.coalesce(lanes)
        assert access.n_lines == 1
        assert access.line_addresses == (0,)
        assert access.active_lanes == 32

    def test_strided_warp_explodes(self):
        coalescer = Coalescer(128)
        lanes = np.arange(32, dtype=np.int64) * 128
        access = coalescer.coalesce(lanes)
        assert access.n_lines == 32

    def test_line_alignment(self):
        coalescer = Coalescer(128)
        access = coalescer.coalesce(np.array([130, 140, 260]))
        assert access.line_addresses == (128, 256)

    def test_average_ratio(self):
        coalescer = Coalescer(128)
        coalescer.coalesce(np.arange(32, dtype=np.int64) * 4)
        coalescer.coalesce(np.arange(32, dtype=np.int64) * 128)
        assert coalescer.average_ratio == pytest.approx((1 + 32) / 2)

    def test_empty_warp_rejected(self):
        with pytest.raises(TraceError):
            Coalescer(128).coalesce(np.array([], dtype=np.int64))

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError):
            Coalescer(128).coalesce(np.array([-4], dtype=np.int64))

    @given(st.lists(st.integers(0, 2**30), min_size=1, max_size=32))
    def test_lines_cover_every_lane(self, raw):
        coalescer = Coalescer(128)
        lanes = np.array(raw, dtype=np.int64)
        access = coalescer.coalesce(lanes)
        lines = set(access.line_addresses)
        for address in raw:
            assert (address >> 7) << 7 in lines
        # and no spurious lines
        assert len(lines) == len({(a >> 7) << 7 for a in raw})


class TestWarpStructures:
    def test_access_validation(self):
        with pytest.raises(TraceError):
            WarpAccess(access_id=0, is_store=False, line_addresses=())
        with pytest.raises(TraceError):
            WarpAccess(0, False, (128,), active_lanes=0)

    def test_plain_segment_counts(self):
        access = WarpAccess(0, False, (0,))
        segment = PlainSegment(n_instructions=5, accesses=(access,))
        assert segment.n_instructions == 5
        with pytest.raises(TraceError):
            PlainSegment(n_instructions=0, accesses=(access,))

    def test_candidate_segment_counts(self):
        loads = tuple(WarpAccess(i, False, (i * 128,)) for i in range(3))
        stores = (WarpAccess(3, True, (1024,)),)
        segment = CandidateSegment(
            block_id=0,
            n_instructions=10,
            accesses=loads + stores,
            iterations=2,
            condition_value=2,
        )
        assert segment.n_loads == 3
        assert segment.n_stores == 1
        assert segment.all_line_addresses() == [0, 128, 256, 1024]

    def test_candidate_validation(self):
        with pytest.raises(TraceError):
            CandidateSegment(block_id=0, n_instructions=1, accesses=(), iterations=0)

    def test_task_aggregates(self):
        plain = PlainSegment(n_instructions=4)
        candidate = CandidateSegment(block_id=0, n_instructions=6, accesses=())
        task = WarpTask(warp_id=0, segments=(plain, candidate))
        assert task.total_instructions == 10
        assert task.n_candidate_instances == 1
        assert count_candidate_instances([task, task]) == 2
        assert total_trace_instructions([task, task]) == 20

    def test_empty_task_rejected(self):
        with pytest.raises(TraceError):
            WarpTask(warp_id=0, segments=())


class TestSmConstruction:
    def test_main_sm_count_and_slots(self):
        sms = build_main_sms(Engine(), CFG)
        assert len(sms) == 64
        assert sms[0].slots.capacity == 48
        assert sms[0].cta_slots.capacity == CFG.gpu.max_ctas_per_sm

    def test_stack_sm_capacity_multiplier(self):
        cfg4 = ndp_config(warp_capacity_multiplier=4)
        sms = build_stack_sms(Engine(), cfg4)
        assert len(sms) == 4
        assert sms[0].slots.capacity == 4 * 48

    def test_issue_accounting(self):
        sm = build_main_sms(Engine(), CFG)[0]
        sm.charge_instructions(10)
        assert sm.instructions_issued == 10
