"""Tests for supervised job execution (repro.core.supervisor),
run manifests (repro.core.manifest), and the supervised suite driver
(run_suite_supervised): per-job fault isolation, timeouts and retries,
manifest streaming + resume, and the strict run_suite contract.

Crash and hang injections only ever target pooled runs (two or more
jobs, ``jobs=2``): the inline path offers no containment, and an
``os._exit`` there would take the test process down with it.
"""

from __future__ import annotations

import json

import pytest

from repro.config import SystemConfig
from repro.core import manifest as manifest_mod
from repro.core.experiment import run_suite, run_suite_supervised
from repro.core.parallel import SuiteJob
from repro.core.policies import NDP_CTRL_BMAP
from repro.core.supervisor import (
    JobFailure,
    SupervisorConfig,
    run_supervised,
)
from repro.errors import ConfigError, JobExecutionError
from repro.trace.generator import TraceScale

POLICIES = (NDP_CTRL_BMAP,)


@pytest.fixture
def no_persistent_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_STATE", raising=False)


def _job(workload: str, **kwargs) -> SuiteJob:
    return SuiteJob(workload, POLICIES, TraceScale.TINY, 0, **kwargs)


class TestSupervisorConfig:
    def test_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "3")
        cfg = SupervisorConfig.from_env()
        assert cfg.timeout == 12.5
        assert cfg.max_retries == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "3")
        cfg = SupervisorConfig.from_env(timeout=1.0, max_retries=0)
        assert cfg.timeout == 1.0
        assert cfg.max_retries == 0

    @pytest.mark.parametrize(
        "env, value",
        [("REPRO_JOB_TIMEOUT", "soon"), ("REPRO_MAX_RETRIES", "few")],
    )
    def test_bad_env_rejected(self, monkeypatch, env, value):
        monkeypatch.setenv(env, value)
        with pytest.raises(ConfigError):
            SupervisorConfig.from_env()

    @pytest.mark.parametrize(
        "kwargs", [{"timeout": -1.0}, {"timeout": 0.0}, {"max_retries": -1}]
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SupervisorConfig.from_env(**kwargs)

    def test_backoff_is_capped(self):
        from repro.core.supervisor import _backoff

        cfg = SupervisorConfig(backoff_base=0.1, backoff_cap=2.0)
        delays = [_backoff(cfg, n) for n in (1, 2, 3, 10)]
        assert delays == [0.1, 0.2, 0.4, 2.0]
        assert delays == sorted(delays)


class TestHealthyRuns:
    def test_outcomes_in_submission_order(self, no_persistent_cache):
        outcomes = run_supervised([_job("SP"), _job("RD")], n_jobs=2)
        assert [o.job.workload for o in outcomes] == ["SP", "RD"]
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert all(o.failure is None for o in outcomes)

    def test_pool_matches_inline(self, no_persistent_cache):
        """Supervision must not change results: pooled and inline
        executions of the same jobs are bit-identical."""
        jobs = [_job("SP"), _job("RD")]
        pooled = run_supervised(jobs, n_jobs=2)
        inline = run_supervised(jobs, n_jobs=1)
        assert all(o.ran_inline for o in inline)
        for a, b in zip(pooled, inline):
            assert a.results == b.results

    def test_pickle_hostile_job_isolated(self, no_persistent_cache):
        """One unpicklable job no longer demotes the batch: it runs
        inline while its picklable sibling still uses the pool."""

        class LocalConfig(SystemConfig):
            """Defined in the test body: unpicklable by reference."""

        hostile = _job("SP", ndp_configuration=LocalConfig())
        friendly = _job("RD")
        outcomes = run_supervised([hostile, friendly], n_jobs=2)
        by_name = {o.job.workload: o for o in outcomes}
        assert by_name["SP"].ok and by_name["SP"].ran_inline
        assert by_name["RD"].ok and not by_name["RD"].ran_inline


class TestInjectedFailures:
    def test_crash_is_contained(self, no_persistent_cache, monkeypatch):
        """A worker death fails only the crashing job; its pool
        neighbours are replayed and complete."""
        monkeypatch.setenv("REPRO_FAULTS", "crash@job/SP")
        outcomes = run_supervised(
            [_job("SP"), _job("RD")],
            n_jobs=2,
            config=SupervisorConfig(max_retries=0),
        )
        by_name = {o.job.workload: o for o in outcomes}
        assert not by_name["SP"].ok
        assert by_name["SP"].failure.kind == "crash"
        assert by_name["RD"].ok

    def test_error_failure_is_structured(self, no_persistent_cache, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@job/SP")
        outcomes = run_supervised(
            [_job("SP"), _job("RD")],
            n_jobs=2,
            config=SupervisorConfig(max_retries=1),
        )
        failure = {o.job.workload: o for o in outcomes}["SP"].failure
        assert isinstance(failure, JobFailure)
        assert failure.kind == "error"
        assert failure.attempts == 2  # initial + 1 retry, all charged
        assert "InjectedFault" in failure.message
        assert failure.workload == "SP"
        assert failure.policies == tuple(p.label for p in POLICIES)
        assert "SP" in failure.describe()
        assert failure.to_dict()["kind"] == "error"

    def test_timeout_and_retry_exhaustion(self, no_persistent_cache, monkeypatch):
        """A hung worker trips the job timeout, is charged an attempt
        per try, and fails as kind=timeout once retries run out —
        without taking the healthy job with it."""
        monkeypatch.setenv("REPRO_FAULTS", "hang@job/RD:t=60")
        outcomes = run_supervised(
            [_job("SP"), _job("RD")],
            n_jobs=2,
            config=SupervisorConfig(timeout=1.5, max_retries=1),
        )
        by_name = {o.job.workload: o for o in outcomes}
        assert by_name["SP"].ok
        failure = by_name["RD"].failure
        assert failure.kind == "timeout"
        assert failure.attempts == 2

    def test_timeout_enforced_even_serial(
        self, no_persistent_cache, monkeypatch
    ):
        """A configured timeout forces a (one-worker) pool: on a
        single-CPU machine a hung job must still time out instead of
        hanging the suite — and a crash must still be contained."""
        monkeypatch.setenv("REPRO_FAULTS", "hang@job/SP:t=60")
        (outcome,) = run_supervised(
            [_job("SP")],
            n_jobs=1,
            config=SupervisorConfig(timeout=1.5, max_retries=0),
        )
        assert not outcome.ran_inline
        assert outcome.failure.kind == "timeout"

    def test_transient_fault_recovered_by_retry(
        self, no_persistent_cache, monkeypatch, tmp_path
    ):
        """An n=1 fault fires on the first attempt only (the firing
        budget is shared across worker processes through the state
        directory), so the retry succeeds."""
        monkeypatch.setenv("REPRO_FAULTS", "raise@job/SP:n=1")
        monkeypatch.setenv("REPRO_FAULTS_STATE", str(tmp_path / "claims"))
        outcomes = run_supervised(
            [_job("SP"), _job("RD")],
            n_jobs=2,
            config=SupervisorConfig(max_retries=2),
        )
        by_name = {o.job.workload: o for o in outcomes}
        assert by_name["SP"].ok
        assert by_name["SP"].attempts == 2
        assert by_name["RD"].attempts == 1

    def test_run_suite_stays_strict(self, no_persistent_cache, monkeypatch):
        """The legacy entry point still raises on any failure — as a
        structured JobExecutionError carrying the failures."""
        monkeypatch.setenv("REPRO_FAULTS", "raise@job/SP")
        with pytest.raises(JobExecutionError) as excinfo:
            run_suite(
                POLICIES, scale=TraceScale.TINY, workloads=["SP", "RD"], jobs=2
            )
        (failure,) = excinfo.value.failures
        assert failure.workload == "SP"


class TestManifestAndResume:
    def _run(self, manifest_path, resume=False, workloads=("SP", "RD"), **kwargs):
        return run_suite_supervised(
            POLICIES,
            scale=TraceScale.TINY,
            workloads=list(workloads),
            jobs=2,
            manifest_path=str(manifest_path),
            resume=resume,
            **kwargs,
        )

    def test_manifest_records_every_outcome(
        self, no_persistent_cache, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        report = self._run(path)
        assert report.ok and not report.failures
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        header, entries = lines[0], lines[1:]
        assert header["kind"] == "manifest"
        assert header["run"]  # fingerprint present
        assert {e["workload"] for e in entries} == {"SP", "RD"}
        assert all(e["status"] == "ok" for e in entries)
        assert all("results" in e for e in entries)

    def test_resume_skips_completed_points(
        self, no_persistent_cache, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.jsonl"
        first = self._run(path)
        resumed = self._run(path, resume=True)
        assert resumed.outcomes == []  # nothing re-ran
        assert resumed.resumed == sum(len(v) for v in first.results.values())
        for name in first.results:
            for label in first.results[name]:
                assert resumed.results[name][label] == first.results[name][label]

    def test_resume_reruns_only_failed_points(
        self, no_persistent_cache, tmp_path, monkeypatch
    ):
        path = tmp_path / "run.jsonl"
        monkeypatch.setenv("REPRO_FAULTS", "raise@job/SP")
        broken = self._run(path, max_retries=0)
        assert [f.workload for f in broken.failures] == ["SP"]
        assert "SP" not in broken.results

        monkeypatch.delenv("REPRO_FAULTS")
        healed = self._run(path, resume=True, max_retries=0)
        assert [o.job.workload for o in healed.outcomes] == ["SP"]
        assert not healed.failures
        assert set(healed.results) == {"SP", "RD"}

    def test_resume_rejects_foreign_manifest(
        self, no_persistent_cache, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        self._run(path)
        with pytest.raises(ConfigError):
            self._run(path, resume=True, seed=1)  # different run fingerprint

    def test_resume_requires_manifest(self, no_persistent_cache):
        with pytest.raises(ConfigError):
            run_suite_supervised(
                POLICIES, scale=TraceScale.TINY, workloads=["SP"], resume=True
            )

    def test_truncated_tail_tolerated(self, no_persistent_cache, tmp_path):
        """A run killed mid-write leaves a partial last line; resume
        must ignore it and re-run only what that line would have
        covered."""
        path = tmp_path / "run.jsonl"
        self._run(path)
        with open(path, "a") as handle:
            handle.write('{"kind": "job", "workload": "SP", "stat')
        resumed = self._run(path, resume=True)
        assert not resumed.failures
        assert set(resumed.results) == {"SP", "RD"}

    def test_load_manifest_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            manifest_mod.load_manifest(str(tmp_path / "absent.jsonl"))


class TestJobEvents:
    def test_recorder_sees_job_lifecycle(
        self, no_persistent_cache, monkeypatch
    ):
        from repro.obs import TraceRecorder, event_from_dict

        monkeypatch.setenv("REPRO_FAULTS", "raise@job/SP")
        recorder = TraceRecorder()
        report = run_suite_supervised(
            POLICIES,
            scale=TraceScale.TINY,
            workloads=["SP", "RD"],
            jobs=2,
            max_retries=0,
            recorder=recorder,
        )
        assert len(report.failures) == 1
        by_name = {event.workload: event for event in recorder.jobs}
        assert by_name["SP"].status == "failed"
        assert by_name["SP"].error and "InjectedFault" in by_name["SP"].error
        assert by_name["RD"].status == "ok"
        assert by_name["RD"].error is None
        for event in recorder.jobs:
            round_tripped = event_from_dict(event.to_dict())
            assert round_tripped == event
