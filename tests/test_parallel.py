"""Tests for the parallel suite runner (repro.core.parallel).

The contract: serial and parallel execution are bit-identical, the
worker count honors ``REPRO_JOBS``, and pickling-hostile payloads fall
back to the serial path instead of failing.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig, ndp_config
from repro.core.experiment import run_suite
from repro.core.parallel import SuiteJob, default_jobs, execute_job, run_jobs
from repro.core.policies import (
    NDP_CTRL_BMAP,
    NDP_CTRL_TMAP,
    NDP_NOCTRL_BMAP,
)
from repro.core.simulator import Simulator
from repro.trace.generator import TraceScale

POLICIES = (NDP_CTRL_BMAP, NDP_CTRL_TMAP, NDP_NOCTRL_BMAP)
WORKLOADS = ["SP", "RD"]


@pytest.fixture
def no_persistent_cache(monkeypatch):
    """Force both runs to actually simulate (no disk-cache shortcuts)."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_minimum_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()

    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == (os.cpu_count() or 1)


class TestSerialParallelEquality:
    def test_parallel_matches_serial(self, no_persistent_cache):
        """2 workloads x 3 policies (+baseline): every SimulationResult
        — cycles, traffic, energy, offload bookkeeping — must be
        bit-identical between the in-process serial path and the
        process-pool path."""
        serial = run_suite(
            POLICIES, scale=TraceScale.TINY, workloads=WORKLOADS, jobs=1
        )
        parallel = run_suite(
            POLICIES, scale=TraceScale.TINY, workloads=WORKLOADS, jobs=2
        )
        assert set(serial) == set(parallel) == set(WORKLOADS)
        for name in WORKLOADS:
            assert set(serial[name]) == set(parallel[name])
            for label, result in serial[name].items():
                other = parallel[name][label]
                assert result == other, f"{name}/{label} diverged"
                assert result.cycles == other.cycles
                assert result.traffic == other.traffic

    def test_job_shares_one_trace_across_policies(self, no_persistent_cache):
        """One job simulates all of a workload's policies against the
        same trace: warp_instructions agree across policies (the
        speedup_over() precondition)."""
        (job_results,) = run_jobs(
            [SuiteJob("SP", POLICIES, TraceScale.TINY, 0)], n_jobs=1
        )
        counts = {r.warp_instructions for r in job_results.values()}
        assert len(counts) == 1


class TestFallbacks:
    def test_single_job_runs_inline(self, no_persistent_cache):
        job = SuiteJob("SP", (NDP_CTRL_BMAP,), TraceScale.TINY, 0)
        (results,) = run_jobs([job], n_jobs=4)  # 1 job -> no pool
        assert results[NDP_CTRL_BMAP.label].cycles > 0

    def test_unpicklable_job_falls_back_to_serial(self, no_persistent_cache):
        class LocalConfig(SystemConfig):
            """Defined inside the test: unpicklable by reference."""

        job = SuiteJob(
            "SP",
            (NDP_CTRL_BMAP,),
            TraceScale.TINY,
            0,
            ndp_configuration=LocalConfig(),
        )
        results = run_jobs([job, job], n_jobs=2)
        assert len(results) == 2
        assert results[0] == results[1]

    def test_execute_job_runs_every_policy(self, no_persistent_cache):
        job = SuiteJob("SP", POLICIES, TraceScale.TINY, 0)
        results = execute_job(job)
        assert set(results) == {p.label for p in POLICIES}


class TestEngineDeterminism:
    def test_fresh_simulators_are_identical(self, mini_trace, ndp_cfg):
        """Two fresh Simulator runs of the same trace produce identical
        cycles and traffic — the determinism guarantee the parallel
        path (and the result cache) rests on."""
        first = Simulator(mini_trace, ndp_cfg, NDP_CTRL_TMAP).run()
        second = Simulator(mini_trace, ndp_cfg, NDP_CTRL_TMAP).run()
        assert first.cycles == second.cycles
        assert first.traffic == second.traffic
        assert first.energy == second.energy
        assert first.offload == second.offload

    def test_fresh_runs_identical_with_config_copy(self, mini_trace):
        """Same, with structurally-equal-but-distinct config objects
        (what a worker process reconstructs after unpickling)."""
        first = Simulator(mini_trace, ndp_config(), NDP_CTRL_BMAP).run()
        second = Simulator(mini_trace, ndp_config(), NDP_CTRL_BMAP).run()
        assert first == second
