"""Tests for the Section 3.1 bandwidth cost model, pinned to the
paper's published worked example (Section 3.1.5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler.cost_model import (
    min_beneficial_iterations,
    per_iteration_saving,
    thread_estimate,
    warp_estimate,
)
from repro.errors import CompilerError


class TestPaperExample:
    """LIBOR loop, Figure 4: 5 live-in registers, no live-outs, one load
    and one store per iteration, 50% assumed miss rate, perfect
    coalescing."""

    def test_single_iteration_is_not_beneficial(self):
        estimate = warp_estimate(reg_tx=5, reg_rx=0, n_loads=1, n_stores=1)
        assert estimate.total == pytest.approx(110.25)
        assert not estimate.is_beneficial

    def test_four_iterations_save_bandwidth(self):
        estimate = warp_estimate(
            reg_tx=5, reg_rx=0, n_loads=1, n_stores=1, iterations=4
        )
        assert estimate.total == pytest.approx(-39.0)
        assert estimate.is_beneficial

    def test_break_even_is_four_iterations(self):
        assert min_beneficial_iterations(5, 0, 1, 1) == 4

    def test_component_channels(self):
        estimate = warp_estimate(reg_tx=5, reg_rx=0, n_loads=1, n_stores=1)
        assert estimate.bw_tx == pytest.approx(5 * 32 - (0.5 + 33))
        assert estimate.bw_rx == pytest.approx(-(16 + 0.25))
        # the 2-bit tag: adds TX traffic, saves RX traffic
        assert not estimate.saves_tx
        assert estimate.saves_rx


class TestThreadEstimate:
    def test_equations_1_and_2(self):
        estimate = thread_estimate(reg_tx=3, reg_rx=1, n_loads=2, n_stores=1)
        assert estimate.bw_tx == 3 - (2 + 2 * 1)
        assert estimate.bw_rx == 1 - (2 + 0.25)

    def test_pure_load_block_saves(self):
        estimate = thread_estimate(reg_tx=0, reg_rx=0, n_loads=4, n_stores=0)
        assert estimate.is_beneficial
        assert estimate.saves_tx and estimate.saves_rx

    def test_register_only_block_costs(self):
        estimate = thread_estimate(reg_tx=8, reg_rx=8, n_loads=1, n_stores=0)
        assert not estimate.is_beneficial

    def test_negative_counts_rejected(self):
        with pytest.raises(CompilerError):
            thread_estimate(-1, 0, 1, 0)


class TestWarpEstimate:
    def test_zero_iterations_rejected(self):
        with pytest.raises(CompilerError):
            warp_estimate(1, 0, 1, 0, iterations=0)

    def test_miss_rate_scales_load_benefit(self):
        low = warp_estimate(5, 0, 2, 0, miss_ld=0.1)
        high = warp_estimate(5, 0, 2, 0, miss_ld=0.9)
        assert high.total < low.total

    def test_coalescing_scales_load_benefit(self):
        tight = warp_estimate(5, 0, 2, 0, coal_ld=1.0)
        scattered = warp_estimate(5, 0, 2, 0, coal_ld=8.0)
        assert scattered.total < tight.total

    @given(
        st.integers(0, 16),
        st.integers(0, 16),
        st.integers(0, 8),
        st.integers(0, 8),
        st.integers(1, 64),
    )
    def test_more_iterations_never_hurt(self, reg_tx, reg_rx, loads, stores, iters):
        one = warp_estimate(reg_tx, reg_rx, loads, stores, iterations=1)
        many = warp_estimate(reg_tx, reg_rx, loads, stores, iterations=iters)
        assert many.total <= one.total + 1e-9

    @given(st.integers(0, 16), st.integers(0, 16))
    def test_memoryless_block_never_beneficial(self, reg_tx, reg_rx):
        estimate = warp_estimate(reg_tx, reg_rx, 0, 0, iterations=10)
        assert not estimate.is_beneficial

    @given(
        st.integers(0, 10),
        st.integers(0, 10),
        st.integers(0, 6),
        st.integers(0, 6),
    )
    def test_total_is_sum_of_channels(self, reg_tx, reg_rx, loads, stores):
        estimate = warp_estimate(reg_tx, reg_rx, loads, stores)
        assert estimate.total == pytest.approx(estimate.bw_tx + estimate.bw_rx)


class TestBreakEven:
    def test_memoryless_never(self):
        assert min_beneficial_iterations(4, 0, 0, 0) > 1_000_000

    def test_zero_cost_immediately(self):
        assert min_beneficial_iterations(0, 0, 1, 0) == 1

    @given(
        st.integers(0, 12),
        st.integers(0, 12),
        st.integers(0, 6),
        st.integers(0, 6),
    )
    def test_threshold_is_exact_boundary(self, reg_tx, reg_rx, loads, stores):
        threshold = min_beneficial_iterations(reg_tx, reg_rx, loads, stores)
        if threshold > 1_000_000:
            return  # never beneficial
        at = warp_estimate(reg_tx, reg_rx, loads, stores, iterations=threshold)
        assert at.is_beneficial
        if threshold > 1:
            below = warp_estimate(
                reg_tx, reg_rx, loads, stores, iterations=threshold - 1
            )
            assert not below.is_beneficial

    def test_saving_positive_iff_memory(self):
        assert per_iteration_saving(0, 0) == 0.0
        assert per_iteration_saving(1, 0) > 0
        assert per_iteration_saving(0, 1) > 0
