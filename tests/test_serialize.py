"""Tests for trace serialization."""

import pytest

from repro import TraceScale, build_trace, ndp_config
from repro.errors import TraceError
from repro.trace.serialize import load_trace, save_trace, trace_checksum
from tests.conftest import MiniWorkload


class TestRoundTrip:
    def test_save_load_identical(self, mini_trace, tmp_path):
        path = str(tmp_path / "mini.npz")
        save_trace(mini_trace, path)
        loaded = load_trace(path, mini_trace)
        assert loaded.total_instructions == mini_trace.total_instructions
        assert loaded.n_warps == mini_trace.n_warps
        assert trace_checksum(loaded) == trace_checksum(mini_trace)
        for t1, t2 in zip(loaded.tasks, mini_trace.tasks):
            assert t1.warp_id == t2.warp_id
            for s1, s2 in zip(t1.segments, t2.segments):
                assert type(s1) is type(s2)
                assert s1.n_instructions == s2.n_instructions
                for a1, a2 in zip(s1.accesses, s2.accesses):
                    assert a1.line_addresses == a2.line_addresses
                    assert a1.is_store == a2.is_store

    def test_loaded_trace_simulates_identically(self, mini_trace, tmp_path):
        from repro import BASELINE, baseline_config
        from repro.core.simulator import Simulator

        path = str(tmp_path / "mini.npz")
        save_trace(mini_trace, path)
        loaded = load_trace(path, mini_trace)
        first = Simulator(mini_trace, baseline_config(), BASELINE).run()
        second = Simulator(loaded, baseline_config(), BASELINE).run()
        assert first.cycles == second.cycles
        assert first.traffic.off_chip_total == second.traffic.off_chip_total


class TestValidation:
    def test_wrong_workload_rejected(self, mini_trace, irregular_trace, tmp_path):
        path = str(tmp_path / "mini.npz")
        save_trace(mini_trace, path)
        with pytest.raises(TraceError):
            load_trace(path, irregular_trace)

    def test_wrong_seed_reference_rejected(self, mini_trace, tmp_path):
        other = build_trace(MiniWorkload(), ndp_config(), TraceScale.TINY, seed=99)
        path = str(tmp_path / "mini.npz")
        save_trace(mini_trace, path)
        # same kernel + allocations -> loads fine, and the archive's
        # dynamic content replaces the reference's
        loaded = load_trace(path, other)
        assert trace_checksum(loaded) == trace_checksum(mini_trace)

    def test_checksum_is_sensitive(self, mini_trace, irregular_trace):
        assert trace_checksum(mini_trace) != trace_checksum(irregular_trace)
