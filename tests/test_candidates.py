"""Tests for offload-candidate selection (Section 3.1) and the
offloading metadata table (Section 4.2)."""

import pytest

from repro.compiler import (
    ENTRY_BITS,
    TABLE_ENTRIES,
    OffloadMetadataTable,
    TripKind,
    select_candidates,
)
from repro.errors import CompilerError
from repro.isa import KernelBuilder, parse_kernel

LIB_KERNEL = """
.kernel portfolio_b
.param %Lp
.param %Lbp
.param %Nmat
.param %N
.param %delta
.param %v
.param %b
    mov %n, 0
loop1:
    ld.global<L> %f1, [%Lp + %n]
    mad %f2, %delta, %f1, 1.0
    mul %f4, %v, %delta
    div %f3, %f4, %f2
    st.global<L_b> [%Lbp + %n], %f3
    add %n, %n, 1
    setp.lt %p1, %n, %Nmat
    @%p1 bra loop1
    mov %m, %Nmat
loop2:
    ld.global<L_b> %g1, [%Lbp + %m]
    mul %g2, %b, %g1
    st.global<L_b> [%Lbp + %m], %g2
    add %m, %m, 1
    setp.lt %p2, %m, %N
    @%p2 bra loop2
    exit
"""


class TestLibExample:
    """Both Figure 4 loops must be found as conditional candidates."""

    def test_two_conditional_loop_candidates(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        loops = [c for c in selection.candidates if c.is_loop]
        assert len(loops) == 2
        assert all(c.is_conditional for c in loops)

    def test_loop1_break_even_threshold(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        loop1 = selection.candidates[0]
        assert loop1.condition is not None
        assert loop1.condition.register == "%Nmat"
        # 5 transmitted live-ins (Figure 4): ceil(160 / 49.75) = 4
        assert loop1.condition.min_iterations == 4

    def test_loop1_matches_figure4_live_ins(self):
        """Figure 4 marks five input values; %n enters as the constant 0
        and ships in the metadata, not the request packet."""
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        loop1 = selection.candidates[0]
        assert loop1.n_live_in == 5
        assert loop1.const_live_in == ("%n",)
        assert set(loop1.reg_tx) == {"%Lp", "%Lbp", "%Nmat", "%delta", "%v"}

    def test_loop_bodies_have_one_load_one_store(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        for candidate in selection.candidates:
            assert candidate.n_loads == 1
            assert candidate.n_stores == 1

    def test_no_live_outs(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        for candidate in selection.candidates:
            assert candidate.n_live_out == 0

    def test_trip_kinds_runtime(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        for candidate in selection.candidates:
            assert candidate.trip is not None
            assert candidate.trip.kind is TripKind.RUNTIME

    def test_channel_tags(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        loop1 = selection.candidates[0]
        # store-heavy loop: saves RX, adds TX at the break-even point
        assert loop1.saves_rx
        assert not loop1.saves_tx

    def test_block_ids_are_dense_and_ordered(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        assert [c.block_id for c in selection.candidates] == [0, 1]
        assert selection.candidates[0].start < selection.candidates[1].start

    def test_describe_mentions_conditional(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        assert "conditional" in selection.candidates[0].describe()


class TestLimitations:
    """Section 3.1.4 disqualifiers."""

    def _loop(self, body_extra):
        return parse_kernel(
            f"""
.kernel k
.param %ap
.param %n
    mov %i, 0
loop:
    ld.global %x, [%ap + %i]
{body_extra}
    st.global [%ap + %i], %x
    add %i, %i, 1
    setp.lt %p, %i, %n
    @%p bra loop
    exit
"""
        )

    def test_shared_memory_disqualifies(self):
        selection = select_candidates(self._loop("    st.shared [%i], %x"))
        assert not selection.candidates
        assert any("shared memory" in reason for reason in selection.rejected)

    def test_barrier_disqualifies(self):
        selection = select_candidates(self._loop("    bar.sync"))
        assert not selection.candidates
        assert any("synchronization" in r for r in selection.rejected)

    def test_atomic_disqualifies(self):
        selection = select_candidates(self._loop("    atom.global %o, [%ap], %x"))
        assert not selection.candidates

    def test_escaping_branch_disqualifies(self):
        kernel = parse_kernel(
            """
.kernel esc
.param %ap
.param %n
    mov %i, 0
loop:
    ld.global %x, [%ap + %i]
    setp.lt %q, %x, 0
    @%q bra bail
    st.global [%ap + %i], %x
    add %i, %i, 1
    setp.lt %p, %i, %n
    @%p bra loop
bail:
    exit
"""
        )
        selection = select_candidates(kernel)
        assert all(not c.is_loop for c in selection.candidates)
        assert any("escapes" in r for r in selection.rejected)

    def test_clean_loop_is_accepted(self):
        selection = select_candidates(self._loop("    add %x, %x, 1"))
        assert any(c.is_loop for c in selection.candidates)


class TestStraightLine:
    def test_memory_dense_block_accepted(self):
        b = KernelBuilder("dense", params=["%ap"])
        for i in range(6):
            b.ld_global(f"%x{i}", addr=["%ap", i], array="a")
        b.add("%s", "%x0", "%x1")
        b.st_global(addr=["%ap"], value="%s", array="a")
        b.exit()
        selection = select_candidates(b.build())
        assert len(selection.candidates) == 1
        candidate = selection.candidates[0]
        assert not candidate.is_loop
        assert candidate.n_loads == 6
        assert candidate.estimate.is_beneficial

    def test_register_heavy_block_rejected(self):
        b = KernelBuilder("heavy", params=[f"%p{i}" for i in range(12)])
        b.ld_global("%x", addr=["%p0"], array="a")
        acc = "%x"
        for i in range(11):
            b.add(f"%a{i}", acc, f"%p{i + 1}")
            acc = f"%a{i}"
        b.st_global(addr=["%p0"], value=acc, array="a")
        b.exit()
        selection = select_candidates(b.build())
        # 12 live-in registers vs 1 load + 1 store: never worth it
        assert not selection.candidates

    def test_no_memory_no_candidate(self):
        b = KernelBuilder("alu")
        b.mov("%a", 1)
        b.add("%b", "%a", 2)
        b.st_global(addr=["%b"], value="%b", array="o")
        b.exit()
        selection = select_candidates(b.build())
        # the store-bearing region is considered, pure-ALU ones are not
        assert all("no global memory" not in c.describe() for c in selection.candidates)


class TestMetadataTable:
    def test_entry_bits_match_paper(self):
        assert ENTRY_BITS == 258
        assert TABLE_ENTRIES == 40

    def test_lookup(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        table = OffloadMetadataTable(selection)
        assert len(table) == 2
        entry = table.lookup(0)
        assert entry.begin_pc == selection.candidates[0].start
        assert entry.condition is not None
        assert entry.tag & 0b10  # saves RX bit

    def test_lookup_by_pc(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        table = OffloadMetadataTable(selection)
        entry = table.lookup_by_pc(selection.candidates[1].start)
        assert entry is not None and entry.block_id == 1
        assert table.lookup_by_pc(999) is None

    def test_missing_block_raises(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        table = OffloadMetadataTable(selection)
        with pytest.raises(CompilerError):
            table.lookup(7)

    def test_storage_accounting(self):
        selection = select_candidates(parse_kernel(LIB_KERNEL))
        table = OffloadMetadataTable(selection)
        assert table.storage_bits == 40 * 258 == 10320
        assert table.used_bits == 2 * 258
