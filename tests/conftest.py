"""Shared fixtures: configurations, a miniature workload, cached traces."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(monkeypatch, tmp_path):
    """Point the persistent result cache at a per-test directory so
    tests exercise the cache code without sharing state with the user's
    real cache (or with each other — several tests monkeypatch simulator
    internals, and their results must never leak across tests)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))

from repro import TraceScale, baseline_config, build_trace, ndp_config
from repro.isa import KernelBuilder
from repro.trace.generator import TraceModel
from repro.trace.patterns import LinearPattern, RandomPattern


class MiniWorkload(TraceModel):
    """A two-array streaming kernel small enough for fast tests: one
    runtime-bound candidate loop (2 loads, 1 store) plus a short plain
    epilogue."""

    name = "MINI"
    default_iterations = 6
    max_iterations = 8

    def build_kernel(self):
        b = KernelBuilder("mini", params=["%ap", "%bp", "%cp", "%n"])
        b.mov("%i", 0)
        b.label("loop")
        b.ld_global("%x", addr=["%ap", "%i"], array="a")
        b.ld_global("%y", addr=["%bp", "%i"], array="b")
        b.add("%s", "%x", "%y")
        b.st_global(addr=["%cp", "%i"], value="%s", array="c")
        b.add("%i", "%i", 1)
        b.setp("%p", "%i", "%n")
        b.bra("loop", pred="%p")
        b.mul("%t", "%s", 2.0)
        b.st_global(addr=["%cp"], value="%t", array="c")
        b.exit()
        return b.build()

    def array_specs(self):
        mb = 1 << 20
        return [("a", 4 * mb), ("b", 4 * mb), ("c", 4 * mb)]

    def pattern_for(self, array, access_id):
        span = self.max_iterations * 32
        return LinearPattern(array, span_elements=span)

    def iterations_for(self, block_id, warp_id, rng):
        return int(rng.integers(4, 9))


class IrregularMiniWorkload(MiniWorkload):
    """MINI with random gathers — exercises the irregular paths."""

    name = "MINI-RND"

    def pattern_for(self, array, access_id):
        return RandomPattern(array)


@pytest.fixture(scope="session")
def ndp_cfg():
    return ndp_config()

@pytest.fixture(scope="session")
def base_cfg():
    return baseline_config()


@pytest.fixture(scope="session")
def mini_trace(ndp_cfg):
    return build_trace(MiniWorkload(), ndp_cfg, TraceScale.TINY, seed=7)


@pytest.fixture(scope="session")
def irregular_trace(ndp_cfg):
    return build_trace(IrregularMiniWorkload(), ndp_cfg, TraceScale.TINY, seed=7)


@pytest.fixture(scope="session")
def lib_trace(ndp_cfg):
    from repro import make_workload

    return build_trace(make_workload("LIB"), ndp_cfg, TraceScale.TINY, seed=0)
