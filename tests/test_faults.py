"""Tests for the deterministic fault-injection harness
(repro.testing.faults): spec parsing, target matching, seeded
determinism, firing limits (process-local and cross-process), and the
payload-corruption helpers.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.testing import faults
from repro.testing.faults import (
    FaultSpecError,
    InjectedFault,
    corrupt_payload,
    maybe_fault,
    parse_spec,
)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Every test starts with fault injection off and no shared state."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_STATE", raising=False)


class TestParseSpec:
    def test_minimal_clause(self):
        plan = parse_spec("crash")
        assert len(plan.rules) == 1
        rule = plan.rules[0]
        assert rule.kind == "crash"
        assert rule.target == ""  # matches every site
        assert rule.probability == 1.0
        assert rule.max_fires is None

    def test_target_may_contain_slashes(self):
        (rule,) = parse_spec("crash@job/SP").rules
        assert rule.target == "job/SP"
        assert rule.matches("job/SP")
        assert not rule.matches("job/RD")

    def test_full_grammar(self):
        plan = parse_spec(
            "seed=7;crash@job/SP:code=9;raise@job/RD:p=0.5:n=2;"
            "hang@job/LIB:t=30;corrupt-cache:mode=truncate"
        )
        assert plan.seed == 7
        kinds = [rule.kind for rule in plan.rules]
        assert kinds == ["crash", "raise", "hang", "corrupt-cache"]
        crash, raise_, hang, corrupt = plan.rules
        assert crash.exit_code == 9
        assert raise_.probability == 0.5 and raise_.max_fires == 2
        assert hang.hang_seconds == 30.0
        assert corrupt.mode == "truncate"
        assert [rule.index for rule in plan.rules] == [0, 1, 2, 3]

    def test_empty_clauses_skipped(self):
        assert parse_spec("; crash ;;") .rules[0].kind == "crash"
        assert parse_spec("").rules == []

    @pytest.mark.parametrize(
        "spec",
        [
            "explode",  # unknown kind
            "crash:frequency",  # parameter without '='
            "crash:p=often",  # non-numeric probability
            "raise:p=1.5",  # probability out of range
            "raise:n=0",  # n must be >= 1
            "corrupt-cache:mode=scramble",  # unknown mode
            "crash:zzz=1",  # unknown parameter
            "seed=lots",  # non-integer seed
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            parse_spec(spec)


class TestDeterminism:
    def test_probability_stream_is_reproducible(self):
        """Two independently parsed plans make identical p=0.5 decisions
        — exactly what lets a worker process rebuild the parent's plan
        from the inherited environment."""
        decisions = []
        for _ in range(2):
            plan = parse_spec("seed=3;raise@job:p=0.5")
            (rule,) = plan.rules
            decisions.append(
                [plan.should_fire(rule, f"job/W{i}") for i in range(20)]
            )
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_seed_changes_decisions(self):
        outcomes = {}
        for seed in (0, 1):
            plan = parse_spec(f"seed={seed};raise:p=0.5")
            (rule,) = plan.rules
            outcomes[seed] = tuple(
                plan.should_fire(rule, f"site{i}") for i in range(64)
            )
        assert outcomes[0] != outcomes[1]

    def test_p_zero_never_fires_p_one_always(self):
        plan = parse_spec("raise:p=0;crash:p=1")
        never, always = plan.rules
        assert not any(plan.should_fire(never, f"s{i}") for i in range(32))
        assert all(plan.should_fire(always, f"s{i}") for i in range(32))

    def test_nonmatching_target_never_fires(self):
        plan = parse_spec("crash@job/SP")
        (rule,) = plan.rules
        assert not plan.should_fire(rule, "job/RD")
        assert not plan.should_fire(rule, "cache/abc")


class TestFiringLimits:
    def test_process_local_n_limit(self):
        plan = parse_spec("raise@job/SP:n=2")
        (rule,) = plan.rules
        fired = [plan.should_fire(rule, "job/SP") for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_limit_is_per_site(self):
        plan = parse_spec("raise@job:n=1")
        (rule,) = plan.rules
        assert plan.should_fire(rule, "job/SP")
        assert plan.should_fire(rule, "job/RD")  # separate site, own count
        assert not plan.should_fire(rule, "job/SP")

    def test_state_dir_shares_limit_across_plans(self, monkeypatch, tmp_path):
        """With REPRO_FAULTS_STATE set, the n= budget is claimed through
        exclusively-created marker files, so a fresh plan (a respawned
        worker) cannot fire the rule again."""
        monkeypatch.setenv("REPRO_FAULTS_STATE", str(tmp_path / "claims"))
        first = parse_spec("raise@job/SP:n=1")
        assert first.should_fire(first.rules[0], "job/SP")
        second = parse_spec("raise@job/SP:n=1")  # simulates another process
        assert not second.should_fire(second.rules[0], "job/SP")


class TestPlanCache:
    def test_inactive_without_env(self):
        assert not faults.active()
        assert faults.plan() is None
        maybe_fault("job/SP")  # no-op

    def test_plan_follows_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@job/SP")
        assert faults.active()
        first = faults.plan()
        assert first is faults.plan()  # cached while the spec is stable
        monkeypatch.setenv("REPRO_FAULTS", "crash@job/RD")
        assert faults.plan() is not first
        assert faults.plan().rules[0].target == "job/RD"


class TestMaybeFault:
    def test_raise_rule_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise@job/SP")
        with pytest.raises(InjectedFault):
            maybe_fault("job/SP")
        maybe_fault("job/RD")  # non-matching site unaffected

    def test_hang_rule_sleeps(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang@job/SP:t=0.05")
        start = time.monotonic()
        maybe_fault("job/SP")
        assert time.monotonic() - start >= 0.05

    def test_bad_spec_surfaces_as_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "explode")
        with pytest.raises(FaultSpecError):
            maybe_fault("job/SP")


class TestCorruptPayload:
    PAYLOAD = json.dumps({"format": 2, "value": 123.456}).encode()

    def test_flip_keeps_json_parseable(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt-cache@cache/abc")
        mangled = corrupt_payload("cache/abc", self.PAYLOAD)
        assert mangled != self.PAYLOAD
        assert len(mangled) == len(self.PAYLOAD)
        json.loads(mangled)  # still valid JSON: only checksums catch it

    def test_truncate_breaks_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt-cache:mode=truncate")
        mangled = corrupt_payload("cache/abc", self.PAYLOAD)
        assert len(mangled) < len(self.PAYLOAD)
        with pytest.raises(ValueError):
            json.loads(mangled)

    def test_nonmatching_site_untouched(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt-cache@cache/abc")
        assert corrupt_payload("cache/xyz", self.PAYLOAD) == self.PAYLOAD

    def test_execution_rules_do_not_corrupt(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise;crash;hang")
        assert corrupt_payload("cache/abc", self.PAYLOAD) == self.PAYLOAD

    def test_flip_without_digits_appends(self):
        assert faults._flip_digit(b"{}") == b"{} "
