"""White-box tests of Simulator internals and the backlog signal."""


import pytest

from repro import NDP_CTRL_BMAP, NDP_CTRL_TMAP, ndp_config
from repro.core.policies import MappingPolicy
from repro.core.simulator import Simulator
from repro.core.system import _IssueBacklogSignal
from repro.utils.simcore import BandwidthResource, Engine


class TestGroupByStack:
    def test_groups_cover_all_lines(self, mini_trace):
        simulator = Simulator(mini_trace, ndp_config(), NDP_CTRL_BMAP)
        lines = [0, 128, 4096, 65536, 1 << 20]
        groups = simulator._group_by_stack(lines)
        regrouped = sorted(line for group in groups.values() for line in group)
        assert regrouped == sorted(lines)
        assert all(0 <= stack < 4 for stack in groups)

    def test_group_respects_mapping(self, mini_trace):
        simulator = Simulator(mini_trace, ndp_config(), NDP_CTRL_BMAP)
        mapping = simulator.mapping
        for stack, group in simulator._group_by_stack([i * 128 for i in range(64)]).items():
            for line in group:
                assert int(mapping.stack_of(line)) == stack


class TestDestination:
    def test_destination_is_first_access_stack(self, mini_trace):
        simulator = Simulator(mini_trace, ndp_config(), NDP_CTRL_BMAP)
        segment = mini_trace.candidate_segments()[0]
        expected = int(
            simulator.mapping.stack_of(segment.accesses[0].line_addresses[0])
        )
        assert simulator._destination_for(segment) == expected


class TestLearningSkipSet:
    def test_learned_instances_marked(self, mini_trace):
        simulator = Simulator(mini_trace, ndp_config(), NDP_CTRL_TMAP)
        simulator.run()
        assert simulator._tmap is not None
        assert len(simulator._learned_instance_ids) == simulator._tmap.learn_target

    def test_learning_cost_appears_on_pcie(self, mini_trace):
        simulator = Simulator(mini_trace, ndp_config(), NDP_CTRL_TMAP)
        result = simulator.run()
        assert result.traffic.pcie > 0
        # learning-phase bytes are the learned instances' accesses only
        learned = simulator._tmap.learn_target
        per_instance = result.traffic.pcie / learned
        assert per_instance < 100_000  # sanity: a few KB per instance

    def test_bmap_has_no_learning(self, mini_trace):
        simulator = Simulator(mini_trace, ndp_config(), NDP_CTRL_BMAP)
        result = simulator.run()
        assert simulator._tmap is None
        assert result.traffic.pcie == 0


class TestMappingProperty:
    def test_bmap_mapping_is_static(self, mini_trace):
        simulator = Simulator(mini_trace, ndp_config(), NDP_CTRL_BMAP)
        assert simulator.policy.mapping is MappingPolicy.BMAP
        from repro.memory.address_mapping import BaselineMapping

        assert isinstance(simulator.mapping, BaselineMapping)

    def test_tmap_mapping_evolves(self, mini_trace):
        from repro.memory.address_mapping import BaselineMapping, HybridMapping

        simulator = Simulator(mini_trace, ndp_config(), NDP_CTRL_TMAP)
        assert isinstance(simulator.mapping, BaselineMapping)
        simulator.run()
        assert isinstance(simulator.mapping, HybridMapping)


class TestIssueBacklogSignal:
    def test_idle_pipeline_reads_zero(self):
        engine = Engine()
        issue = BandwidthResource(engine, "issue", rate=2.0)
        signal = _IssueBacklogSignal(issue, backlog_limit_cycles=100.0)
        assert signal.utilization() == 0.0

    def test_backlog_saturates_at_one(self):
        engine = Engine()
        issue = BandwidthResource(engine, "issue", rate=2.0)
        signal = _IssueBacklogSignal(issue, backlog_limit_cycles=100.0)
        issue.reserve(1000.0)  # 500 cycles of booked work
        assert signal.utilization() == 1.0

    def test_partial_backlog(self):
        engine = Engine()
        issue = BandwidthResource(engine, "issue", rate=2.0)
        signal = _IssueBacklogSignal(issue, backlog_limit_cycles=100.0)
        issue.reserve(100.0)  # 50 cycles booked
        assert signal.utilization() == pytest.approx(0.5)

    def test_backlog_drains_with_time(self):
        engine = Engine()
        issue = BandwidthResource(engine, "issue", rate=2.0)
        signal = _IssueBacklogSignal(issue, backlog_limit_cycles=100.0)
        issue.reserve(100.0)
        engine.schedule(50.0, lambda: None)
        engine.run()
        assert signal.utilization() == 0.0
