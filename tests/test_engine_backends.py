"""The compiled engine core vs. the pure-Python reference.

The contract under test (repro.accel): the compiled extension
(``repro.accel._core``) is a drop-in, *bit-identical* replacement for
``repro.utils.simcore`` — same event ordering at equal timestamps, same
float arithmetic in ``BandwidthResource``, same ``events_processed``
accounting, same error behavior — selected at runtime via
``REPRO_ENGINE`` / ``make_engine`` and degrading to the reference
implementation (with a one-line warning) when the extension is not
built.

Every cross-backend test here skips cleanly when the extension is not
compiled, so a checkout without a C compiler still passes tier-1.
``REPRO_ACCEL_DISABLE=1`` makes a built checkout behave like an unbuilt
one (used by the fallback tests).

The hypothesis property test is the drift-catcher: random programs over
every request type must replay identically on both backends. Run it
before touching either engine implementation.
"""

from __future__ import annotations

import os
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.accel as accel
from repro.accel import (
    BACKEND_NAMES,
    build_info,
    compiled_available,
    get_backend,
    make_engine,
    resolve_backend_name,
)
from repro.errors import ConfigError, SimulationError
from repro.utils.simcore import (
    Acquire,
    AllOf,
    Get,
    Put,
    Timeout,
    Wait,
)

requires_compiled = pytest.mark.skipif(
    not compiled_available(),
    reason="compiled engine extension not built "
    "(python setup.py build_ext --inplace)",
)


# -- random program interpreter ---------------------------------------
#
# A program is pure data so the same one can be replayed on each
# backend: (n resources, n pools with capacities, event trigger times,
# and per-process op lists). Ops cover every request type the simulator
# yields. Slot holds always release, and waited-on events always fire,
# so generated programs cannot deadlock.

_op = st.one_of(
    st.tuples(
        st.just("timeout"),
        st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 3.0]),
    ),
    st.tuples(
        st.just("acquire"),
        st.integers(min_value=0, max_value=1),
        st.sampled_from([1.0, 4.0, 16.0, 64.0]),
    ),
    st.tuples(
        st.just("slot"),  # Get -> hold -> Put
        st.integers(min_value=0, max_value=1),
        st.sampled_from([0.0, 1.0, 2.0]),
    ),
    st.tuples(st.just("wait"), st.integers(min_value=0, max_value=1)),
    st.tuples(st.just("spawn_join"), st.integers(min_value=1, max_value=3)),
)

_program = st.fixed_dictionaries(
    {
        "pool_capacities": st.lists(
            st.integers(min_value=1, max_value=3), min_size=2, max_size=2
        ),
        "trigger_times": st.lists(
            st.sampled_from([1.0, 2.5, 4.0]), min_size=2, max_size=2
        ),
        "procs": st.lists(
            st.lists(_op, min_size=1, max_size=5), min_size=1, max_size=6
        ),
    }
)


def _replay(program, backend_name):
    """Run one generated program; return (log, end_time, events)."""
    engine = get_backend(backend_name).Engine()
    resources = [
        engine.bandwidth_resource(f"r{i}", rate=8.0, latency=float(i))
        for i in range(2)
    ]
    pools = [
        engine.slot_pool(f"p{i}", capacity)
        for i, capacity in enumerate(program["pool_capacities"])
    ]
    events = [engine.event() for _ in program["trigger_times"]]
    for event, when in zip(events, program["trigger_times"]):
        engine.schedule(when, event.succeed)

    log = []

    def child(delay):
        yield Timeout(delay)

    def proc(pid, ops):
        for index, op in enumerate(ops):
            if op[0] == "timeout":
                yield Timeout(op[1])
            elif op[0] == "acquire":
                done = yield Acquire(resources[op[1]], op[2])
                log.append((pid, index, "acq", engine.now, done))
                continue
            elif op[0] == "slot":
                pool = pools[op[1]]
                yield Get(pool)
                yield Timeout(op[2])
                yield Put(pool)
            elif op[0] == "wait":
                value = yield Wait(events[op[1]])
                log.append((pid, index, "wait", engine.now, value))
                continue
            elif op[0] == "spawn_join":
                children = [
                    engine.process(child(float(k))) for k in range(op[1])
                ]
                yield AllOf(children)
            log.append((pid, index, op[0], engine.now))

    for pid, ops in enumerate(program["procs"]):
        engine.process(proc(pid, ops))
    end = engine.run()
    return log, end, engine.events_processed


@requires_compiled
class TestBitIdentity:
    @settings(
        max_examples=60,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(program=_program)
    def test_random_programs_replay_identically(self, program):
        py_log, py_end, py_events = _replay(program, "python")
        cc_log, cc_end, cc_events = _replay(program, "compiled")
        assert cc_log == py_log
        assert cc_end == py_end  # bit-exact, not approx
        assert cc_events == py_events

    def test_bounded_run_until(self):
        def results(backend):
            engine = get_backend(backend).Engine()
            ticks = []

            def clock():
                while True:
                    yield Timeout(1.0)
                    ticks.append(engine.now)

            engine.process(clock())
            end = engine.run(until=5.5)
            return ticks, end, engine.now, engine.events_processed

        assert results("compiled") == results("python")

    def test_bounded_run_max_events_raises_identically(self):
        def boom(backend):
            engine = get_backend(backend).Engine()

            def clock():
                while True:
                    yield Timeout(1.0)

            engine.process(clock())
            with pytest.raises(SimulationError) as info:
                engine.run(max_events=10)
            return str(info.value), engine.events_processed

        assert boom("compiled") == boom("python")

    def test_negative_delay_raises(self):
        engine = get_backend("compiled").Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule_at(-0.5, lambda: None)

    def test_reserve_and_sequence_float_identical(self):
        amounts = [1.0, 3.5, 64.0, 0.25, 17.0]

        def book(backend):
            engine = get_backend(backend).Engine()
            resource = engine.bandwidth_resource("link", 7.0, latency=2.5)
            times = [resource.reserve(a) for a in amounts]
            times.append(resource.reserve_sequence(amounts))
            return (
                times,
                resource.busy_time,
                resource.units_moved,
                resource.transfers,
                resource.queue_delay(),
            )

        assert book("compiled") == book("python")


@requires_compiled
class TestCompiledSurface:
    def test_backend_attributes(self):
        assert get_backend("python").Engine().backend == "python"
        assert get_backend("compiled").Engine().backend == "compiled"

    def test_factory_methods_build_native_components(self):
        backend = get_backend("compiled")
        engine = backend.Engine()
        assert type(engine.event()) is backend.Event
        assert type(engine.bandwidth_resource("r", 1.0)) is backend.BandwidthResource
        assert type(engine.slot_pool("p", 4)) is backend.SlotPool

    def test_direct_member_writes(self):
        """The DRAM model (repro/memory/dram.py) writes resource
        accounting fields directly instead of calling ``reserve``; the
        ideal policy overwrites ``issue.rate``. The compiled classes
        must accept the same pokes."""
        engine = get_backend("compiled").Engine()
        resource = engine.bandwidth_resource("vault", 4.0, latency=10.0)
        resource._next_free = 123.5
        resource.busy_time += 7.25
        resource.units_moved += 256.0
        resource.transfers += 3
        resource.rate = 9.0
        assert resource._next_free == 123.5
        assert resource.busy_time == 7.25
        assert resource.units_moved == 256.0
        assert resource.transfers == 3
        assert resource.rate == 9.0
        assert resource._engine.now == 0.0

    def test_build_info_fingerprint(self):
        info = build_info()
        assert info is not None
        assert "compiler" in info and "python_abi" in info


class TestSelection:
    def test_invalid_backend_name_rejected(self):
        with pytest.raises(ConfigError):
            resolve_backend_name("fortran")
        assert set(BACKEND_NAMES) == {"auto", "compiled", "python"}

    def test_explicit_python_always_honored(self):
        assert resolve_backend_name("python") == "python"
        assert make_engine("python").backend == "python"

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "python")
        assert make_engine().backend == "python"

    def test_missing_extension_falls_back_with_warning(self, monkeypatch):
        """REPRO_ENGINE=compiled on a checkout without the built
        extension must degrade to the pure-Python engine with a
        RuntimeWarning — never an error."""
        monkeypatch.setenv("REPRO_ACCEL_DISABLE", "1")
        monkeypatch.setenv("REPRO_ENGINE", "compiled")
        monkeypatch.setattr(accel, "_warned_fallback", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            engine = make_engine()
        assert engine.backend == "python"
        # Warn-once: the second construction is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert make_engine().backend == "python"

    def test_missing_extension_auto_is_silent(self, monkeypatch):
        monkeypatch.setenv("REPRO_ACCEL_DISABLE", "1")
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.setattr(accel, "_warned_fallback", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert make_engine().backend == "python"
        assert not compiled_available()
        assert build_info() is None

    def test_simulation_runs_on_disabled_extension(self, monkeypatch):
        """A no-compiler checkout still simulates end to end."""
        monkeypatch.setenv("REPRO_ACCEL_DISABLE", "1")
        monkeypatch.setenv("REPRO_ENGINE", "compiled")
        monkeypatch.setattr(accel, "_warned_fallback", True)
        from repro import TraceScale, WorkloadRunner
        from repro.core.policies import BASELINE

        runner = WorkloadRunner("SP", scale=TraceScale.TINY)
        result = runner.run(BASELINE, cache=False)
        assert result.cycles > 0


@requires_compiled
class TestSystemEquivalence:
    """End-to-end: a real simulation is bit-identical across backends
    (the full Figure-8 SMALL grid variant is exercised by
    ``REPRO_FULL_GRID=1`` in ``tests/test_gridrun.py`` run under
    ``REPRO_ENGINE=compiled`` — CI does this on every push)."""

    def test_tiny_run_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        from repro import TraceScale, WorkloadRunner
        from repro.core.policies import BASELINE, FIGURE8_GRID

        def run_all(backend):
            monkeypatch.setenv("REPRO_ENGINE", backend)
            runner = WorkloadRunner("BFS", scale=TraceScale.TINY)
            return {
                p.label: runner.run(p, cache=False)
                for p in (BASELINE,) + FIGURE8_GRID
            }

        py = run_all("python")
        cc = run_all("compiled")
        for label, reference in py.items():
            assert cc[label] == reference, label

    @pytest.mark.skipif(
        not os.environ.get("REPRO_FULL_GRID"),
        reason="full 70-point SMALL grid cross-backend check; "
        "set REPRO_FULL_GRID=1",
    )
    def test_full_figure8_small_grid_cross_backend(self, monkeypatch):
        """The acceptance bar: every point of the Figure-8 SMALL grid,
        cold (no result cache), is bit-identical between backends."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        from repro import TraceScale, WorkloadRunner
        from repro.core.policies import (
            BASELINE,
            FIGURE8_GRID,
            IDEAL_NDP,
            NDP_CTRL_ORACLE,
        )
        from repro.workloads.suite import SUITE_ORDER

        # 10 workloads x 7 policies: the Figure-8 grid plus the oracle
        # and ideal reference points.
        policies = (BASELINE,) + FIGURE8_GRID + (NDP_CTRL_ORACLE, IDEAL_NDP)
        for workload in SUITE_ORDER:

            def run_all(backend):
                monkeypatch.setenv("REPRO_ENGINE", backend)
                runner = WorkloadRunner(workload, scale=TraceScale.SMALL)
                return {
                    p.label: runner.run(p, cache=False) for p in policies
                }

            py = run_all("python")
            cc = run_all("compiled")
            for policy in policies:
                assert cc[policy.label] == py[policy.label], (
                    workload,
                    policy.label,
                )
