"""Tests for the constant-at-entry live-in analysis."""



from repro.compiler import Cfg, select_candidates
from repro.compiler.constprop import constant_entry_registers
from repro.config import CompilerConfig
from repro.isa import parse_kernel

LOOP = """
.kernel k
.param %ap
.param %n
    mov %i, 0
    mov %scale, 2.5
loop:
    ld.global %x, [%ap + %i]
    mul %y, %x, %scale
    st.global [%ap + %i], %y
    add %i, %i, 1
    setp.lt %p, %i, %n
    @%p bra loop
    exit
"""


def region_of(kernel):
    cfg = Cfg(kernel)
    start = kernel.label_index("loop")
    end = len(kernel) - 1  # everything up to exit
    return cfg, start, end


class TestConstantEntry:
    def test_induction_init_is_constant(self):
        kernel = parse_kernel(LOOP)
        cfg, start, end = region_of(kernel)
        constants = constant_entry_registers(
            kernel, cfg, start, end, ["%i", "%scale", "%ap", "%n"]
        )
        assert constants["%i"] == 0
        assert constants["%scale"] == 2.5
        # params have no defining mov: not constants
        assert "%ap" not in constants
        assert "%n" not in constants

    def test_mov_from_register_is_not_constant(self):
        kernel = parse_kernel(
            """
.kernel k
.param %ap
.param %base
    mov %i, %base
loop:
    ld.global %x, [%ap + %i]
    add %i, %i, 1
    setp.lt %p, %i, 100
    @%p bra loop
    exit
"""
        )
        cfg = Cfg(kernel)
        start = kernel.label_index("loop")
        constants = constant_entry_registers(kernel, cfg, start, len(kernel) - 1, ["%i"])
        assert constants == {}

    def test_redefinition_outside_disqualifies(self):
        kernel = parse_kernel(
            """
.kernel k
.param %ap
    mov %i, 0
    add %i, %i, 4
loop:
    ld.global %x, [%ap + %i]
    add %i, %i, 1
    setp.lt %p, %i, 100
    @%p bra loop
    exit
"""
        )
        cfg = Cfg(kernel)
        start = kernel.label_index("loop")
        constants = constant_entry_registers(kernel, cfg, start, len(kernel) - 1, ["%i"])
        # two outside definitions -> conservatively not constant
        assert constants == {}

    def test_inside_redefinitions_are_fine(self):
        # the loop's own add does not disqualify the entry constant
        kernel = parse_kernel(LOOP)
        cfg, start, end = region_of(kernel)
        constants = constant_entry_registers(kernel, cfg, start, end, ["%i"])
        assert constants == {"%i": 0}


class TestSelectionIntegration:
    def test_constants_excluded_from_transmission(self):
        selection = select_candidates(parse_kernel(LOOP))
        candidate = selection.candidates[0]
        assert "%i" not in candidate.reg_tx
        assert "%i" in candidate.const_live_in
        assert "%scale" in candidate.const_live_in

    def test_disabled_by_config(self):
        config = CompilerConfig(constant_propagation=False)
        selection = select_candidates(parse_kernel(LOOP), config)
        candidate = selection.candidates[0]
        assert "%i" in candidate.reg_tx
        assert candidate.const_live_in == ()

    def test_constprop_lowers_transmission_cost(self):
        with_cp = select_candidates(parse_kernel(LOOP)).candidates[0]
        without_cp = select_candidates(
            parse_kernel(LOOP), CompilerConfig(constant_propagation=False)
        ).candidates[0]
        assert with_cp.n_live_in < without_cp.n_live_in
