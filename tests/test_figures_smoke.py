"""Smoke tests for the figure drivers at TINY scale.

These keep the benchmark harness honest without its run time: every
driver must produce a well-formed FigureResult whose render() includes
all suite columns. The timing-heavy drivers run on a two-workload
subset where the API allows it, TINY scale otherwise.
"""

import pytest

from repro import TraceScale
from repro.analysis.figures import (
    FigureResult,
    default_scale,
    figure5,
    figure6,
    section66,
)
from repro.workloads.suite import SUITE_ORDER


class TestFigureResult:
    def test_render_is_table(self):
        result = FigureResult(
            figure_id="F",
            title="t",
            columns=["a"],
            rows={"s": {"a": 1.0}},
        )
        text = result.render()
        assert "F: t" in text
        assert "1.00" in text

    def test_series_lookup(self):
        result = FigureResult("F", "t", ["a"], {"s": {"a": 2.0}})
        assert result.series("s") == {"a": 2.0}
        with pytest.raises(KeyError):
            result.series("missing")


class TestDefaultScale:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "TINY")
        assert default_scale() is TraceScale.TINY

    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert default_scale() is TraceScale.SMALL

    def test_bad_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "HUGE")
        with pytest.raises(KeyError):
            default_scale()


class TestAnalysisDrivers:
    """The two analysis-only (no timing simulation) figures run over the
    full suite even in unit tests — they are fast."""

    @pytest.fixture(scope="class")
    def fig5(self):
        return figure5(scale=TraceScale.TINY)

    @pytest.fixture(scope="class")
    def fig6(self):
        return figure6(scale=TraceScale.TINY, fractions=(0.01, 1.0))

    def test_figure5_columns(self, fig5):
        for workload in SUITE_ORDER:
            assert workload in fig5.series("has any fixed offset")

    def test_figure5_buckets_partition(self, fig5):
        from repro.analysis.offsets import BUCKETS

        for workload in SUITE_ORDER:
            total = sum(fig5.series(bucket).get(workload, 0.0) for bucket in BUCKETS)
            assert total == pytest.approx(1.0)

    def test_figure5_renders(self, fig5):
        text = fig5.render()
        assert "Figure 5" in text and "BFS" in text

    def test_figure6_ordering(self, fig6):
        oracle = fig6.series("best mapping in all NDP blocks")
        baseline = fig6.series("baseline mapping")
        assert oracle["AVG"] > baseline["AVG"]

    def test_figure6_bounds(self, fig6):
        for series_name in fig6.rows:
            for value in fig6.series(series_name).values():
                assert 0.0 <= value <= 1.0


class TestSection66Driver:
    def test_values(self):
        result = section66()
        bits = result.series("storage bits")
        assert bits["total"] == 64 * (1920 + 10320) + 9700
        assert "0.11" in result.render()
