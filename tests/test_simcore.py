"""Tests for the discrete-event kernel (repro.utils.simcore)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.utils.simcore import (
    Acquire,
    AllOf,
    BandwidthResource,
    Engine,
    Event,
    Get,
    Put,
    SlotPool,
    Timeout,
    Wait,
)


class TestEngine:
    def test_time_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now))
        engine.schedule(2.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.0, 5.0]

    def test_equal_times_fire_in_order(self):
        engine = Engine()
        seen = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: seen.append(i))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_run_until(self):
        engine = Engine()
        seen = []
        engine.schedule(10.0, lambda: seen.append(1))
        assert engine.run(until=5.0) == 5.0
        assert seen == []
        assert engine.run() == 10.0
        assert seen == [1]

    def test_max_events_guard(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)


class TestProcess:
    def test_timeout_sequence(self):
        engine = Engine()
        trace = []

        def proc():
            trace.append(engine.now)
            yield Timeout(3.0)
            trace.append(engine.now)
            yield Timeout(2.0)
            trace.append(engine.now)

        engine.process(proc())
        engine.run()
        assert trace == [0.0, 3.0, 5.0]

    def test_result_and_done_event(self):
        engine = Engine()

        def proc():
            yield Timeout(1.0)
            return 42

        p = engine.process(proc())
        engine.run()
        assert p.finished
        assert p.result == 42
        assert p.done_event.triggered

    def test_unknown_request_raises(self):
        engine = Engine()

        def proc():
            yield "garbage"

        engine.process(proc())
        with pytest.raises(SimulationError):
            engine.run()

    def test_allof_empty(self):
        engine = Engine()
        done = []

        def proc():
            yield AllOf([])
            done.append(engine.now)

        engine.process(proc())
        engine.run()
        assert done == [0.0]

    def test_allof_waits_for_slowest(self):
        engine = Engine()
        finish = []

        def child(delay):
            yield Timeout(delay)

        def parent():
            children = [engine.process(child(d)) for d in (1.0, 5.0, 3.0)]
            yield AllOf(children)
            finish.append(engine.now)

        engine.process(parent())
        engine.run()
        assert finish == [5.0]

    def test_wait_event(self):
        engine = Engine()
        event = Event(engine)
        got = []

        def waiter():
            value = yield Wait(event)
            got.append((engine.now, value))

        engine.process(waiter())
        engine.schedule(4.0, lambda: event.succeed("payload"))
        engine.run()
        assert got == [(4.0, "payload")]

    def test_event_double_succeed(self):
        engine = Engine()
        event = Event(engine)
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()


class TestBandwidthResource:
    def test_serializes(self):
        engine = Engine()
        link = BandwidthResource(engine, "link", rate=2.0)
        ends = []

        def proc():
            t = yield Acquire(link, 10.0)  # 5 cycles
            ends.append(t)

        engine.process(proc())
        engine.process(proc())
        engine.run()
        assert ends == [5.0, 10.0]

    def test_latency_is_pipelined(self):
        engine = Engine()
        link = BandwidthResource(engine, "link", rate=1.0, latency=100.0)
        ends = []

        def proc():
            t = yield Acquire(link, 10.0)
            ends.append(t)

        engine.process(proc())
        engine.process(proc())
        engine.run()
        # both serialize on the 10-cycle occupancy but latency overlaps
        assert ends == [110.0, 120.0]

    def test_counters(self):
        engine = Engine()
        link = BandwidthResource(engine, "link", rate=4.0)

        def proc():
            yield Acquire(link, 8.0)

        engine.process(proc())
        engine.run()
        assert link.units_moved == 8.0
        assert link.busy_time == pytest.approx(2.0)
        assert link.transfers == 1

    def test_zero_amount(self):
        engine = Engine()
        link = BandwidthResource(engine, "link", rate=4.0, latency=7.0)
        ends = []

        def proc():
            ends.append((yield Acquire(link, 0.0)))

        engine.process(proc())
        engine.run()
        assert ends == [7.0]

    def test_negative_amount_rejected(self):
        engine = Engine()
        link = BandwidthResource(engine, "link", rate=4.0)

        def proc():
            yield Acquire(link, -1.0)

        engine.process(proc())
        with pytest.raises(SimulationError):
            engine.run()

    def test_bad_rate_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            BandwidthResource(engine, "x", rate=0.0)

    @given(st.lists(st.floats(0.1, 50.0), min_size=1, max_size=20))
    def test_busy_time_conserved(self, sizes):
        engine = Engine()
        link = BandwidthResource(engine, "link", rate=2.0)

        def proc(size):
            yield Acquire(link, size)

        for size in sizes:
            engine.process(proc(size))
        end = engine.run()
        assert link.busy_time == pytest.approx(sum(sizes) / 2.0)
        assert end == pytest.approx(sum(sizes) / 2.0)


class TestSlotPool:
    def test_blocking_get(self):
        engine = Engine()
        pool = SlotPool(engine, "pool", capacity=1)
        order = []

        def proc(name, hold):
            yield Get(pool)
            order.append((name, engine.now))
            yield Timeout(hold)
            yield Put(pool)

        engine.process(proc("a", 5.0))
        engine.process(proc("b", 1.0))
        engine.run()
        assert order == [("a", 0.0), ("b", 5.0)]

    def test_fifo_order(self):
        engine = Engine()
        pool = SlotPool(engine, "pool", capacity=1)
        order = []

        def proc(name):
            yield Get(pool)
            order.append(name)
            yield Timeout(1.0)
            yield Put(pool)

        for name in "abcde":
            engine.process(proc(name))
        engine.run()
        assert order == list("abcde")

    def test_over_release(self):
        engine = Engine()
        pool = SlotPool(engine, "pool", capacity=2)
        with pytest.raises(SimulationError):
            pool.put()

    def test_try_get_nowait(self):
        engine = Engine()
        pool = SlotPool(engine, "pool", capacity=1)
        assert pool.try_get_nowait()
        assert not pool.try_get_nowait()
        pool.put()
        assert pool.try_get_nowait()

    def test_stats(self):
        engine = Engine()
        pool = SlotPool(engine, "pool", capacity=3)

        def proc():
            yield Get(pool)
            yield Timeout(2.0)
            yield Put(pool)

        for _ in range(5):
            engine.process(proc())
        engine.run()
        assert pool.total_gets == 5
        assert pool.peak_in_use == 3
        assert pool.in_use == 0

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            SlotPool(Engine(), "x", capacity=0)

    @given(st.integers(1, 8), st.integers(1, 30))
    def test_peak_never_exceeds_capacity(self, capacity, n_procs):
        engine = Engine()
        pool = SlotPool(engine, "pool", capacity=capacity)

        def proc():
            yield Get(pool)
            yield Timeout(1.0)
            yield Put(pool)

        for _ in range(n_procs):
            engine.process(proc())
        engine.run()
        assert pool.peak_in_use <= capacity
        assert pool.in_use == 0
        assert pool.total_gets == n_procs
