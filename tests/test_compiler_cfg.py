"""Tests for CFG construction, dominators, loops, and liveness."""

import pytest

from repro.compiler import (
    Cfg,
    TripKind,
    analyze_trip_count,
    compute_liveness,
    find_loops,
    loop_live_registers,
    region_live_registers,
)
from repro.isa import parse_kernel


def simple_loop_kernel():
    return parse_kernel(
        """
.kernel k
.param %n
.param %ap
    mov %i, 0
loop:
    ld.global %x, [%ap + %i]
    add %acc, %acc, %x
    add %i, %i, 1
    setp.lt %p, %i, %n
    @%p bra loop
    st.global [%ap], %acc
    exit
"""
    )


def diamond_kernel():
    return parse_kernel(
        """
.kernel d
.param %c
    setp.lt %p, %c, 0
    @%p bra neg
    mov %r, 1
    bra join
neg:
    mov %r, 2
join:
    st.global [%r], %r
    exit
"""
    )


class TestCfg:
    def test_loop_blocks(self):
        cfg = Cfg(simple_loop_kernel())
        # prologue, loop body, epilogue
        assert len(cfg.blocks) == 3
        loop_block = cfg.block_of(1)
        assert loop_block.successors == sorted(
            set([loop_block.index, loop_block.index + 1])
        ) or set(loop_block.successors) == {loop_block.index, loop_block.index + 1}

    def test_diamond_edges(self):
        cfg = Cfg(diamond_kernel())
        entry = cfg.entry
        assert len(entry.successors) == 2
        join = cfg.block_of(diamond_kernel().label_index("join"))
        assert len(join.predecessors) == 2

    def test_dominators(self):
        cfg = Cfg(diamond_kernel())
        join = cfg.block_of(diamond_kernel().label_index("join")).index
        assert cfg.dominates(0, join)
        # neither branch arm dominates the join
        arms = [b.index for b in cfg.blocks if b.index not in (0, join)]
        for arm in arms:
            assert not cfg.dominates(arm, join)

    def test_entry_dominates_everything(self):
        cfg = Cfg(simple_loop_kernel())
        for block in cfg.blocks:
            if block.index in cfg.reachable_blocks():
                assert cfg.dominates(0, block.index)

    def test_block_of_out_of_range(self):
        cfg = Cfg(simple_loop_kernel())
        from repro.errors import CompilerError

        with pytest.raises(CompilerError):
            cfg.block_of(999)


class TestLoops:
    def test_finds_single_loop(self):
        kernel = simple_loop_kernel()
        loops = find_loops(Cfg(kernel))
        assert len(loops) == 1
        loop = loops[0]
        assert loop.contiguous
        assert loop.start == kernel.label_index("loop")

    def test_no_loops_in_diamond(self):
        assert find_loops(Cfg(diamond_kernel())) == []

    def test_nested_loops_sorted_outermost_first(self):
        kernel = parse_kernel(
            """
.kernel nest
.param %n
.param %m
    mov %i, 0
outer:
    mov %j, 0
inner:
    ld.global %x, [%j]
    add %j, %j, 1
    setp.lt %q, %j, %m
    @%q bra inner
    add %i, %i, 1
    setp.lt %p, %i, %n
    @%p bra outer
    exit
"""
        )
        loops = find_loops(Cfg(kernel))
        assert len(loops) == 2
        assert len(loops[0].blocks) > len(loops[1].blocks)
        assert loops[1].blocks < loops[0].blocks


class TestTripCount:
    def test_runtime_bound(self):
        kernel = simple_loop_kernel()
        cfg = Cfg(kernel)
        loop = find_loops(cfg)[0]
        trip = analyze_trip_count(kernel, cfg, loop)
        assert trip.kind is TripKind.RUNTIME
        assert trip.bound_register == "%n"
        assert trip.induction_register == "%i"
        assert trip.step == 1
        assert trip.assumed_iterations() == 1

    def test_static_bound(self):
        kernel = parse_kernel(
            """
.kernel s
.param %ap
    mov %i, 0
loop:
    ld.global %x, [%ap + %i]
    add %i, %i, 2
    setp.lt %p, %i, 10
    @%p bra loop
    exit
"""
        )
        cfg = Cfg(kernel)
        trip = analyze_trip_count(kernel, cfg, find_loops(cfg)[0])
        assert trip.kind is TripKind.STATIC
        assert trip.static_count == 5
        assert trip.assumed_iterations() == 5

    def test_unknown_when_bound_written_inside(self):
        kernel = parse_kernel(
            """
.kernel u
.param %ap
    mov %i, 0
loop:
    ld.global %lim, [%ap + %i]
    add %i, %i, 1
    setp.lt %p, %i, %lim
    @%p bra loop
    exit
"""
        )
        cfg = Cfg(kernel)
        trip = analyze_trip_count(kernel, cfg, find_loops(cfg)[0])
        assert trip.kind is TripKind.UNKNOWN
        assert trip.assumed_iterations() == 1


class TestLiveness:
    def test_region_live_in_out(self):
        kernel = simple_loop_kernel()
        cfg = Cfg(kernel)
        liveness = compute_liveness(cfg)
        loop = find_loops(cfg)[0]
        reg_tx, reg_rx = loop_live_registers(
            cfg, liveness, loop.blocks, loop.start, loop.end
        )
        # loop reads %ap, %i, %n, %acc from outside
        assert set(reg_tx) >= {"%ap", "%i", "%n"}
        # %acc is stored after the loop -> live-out; %i and %p die
        assert "%acc" in reg_rx
        assert "%i" not in reg_rx
        assert "%p" not in reg_rx

    def test_straight_line_region(self):
        kernel = parse_kernel(
            """
.kernel sl
.param %ap
.param %k
    ld.global %x, [%ap]
    add %y, %x, %k
    st.global [%ap], %y
    mul %z, %y, 2
    st.global [%ap + 4], %z
    exit
"""
        )
        cfg = Cfg(kernel)
        liveness = compute_liveness(cfg)
        reg_tx, reg_rx = region_live_registers(kernel, liveness, 0, 3)
        assert set(reg_tx) == {"%ap", "%k"}
        assert set(reg_rx) == {"%y"}  # %x dies inside, %y used later

    def test_params_live_at_entry(self):
        kernel = simple_loop_kernel()
        liveness = compute_liveness(Cfg(kernel))
        assert "%n" in liveness.live_before[0]
        assert "%ap" in liveness.live_before[0]

    def test_dead_register_not_live(self):
        kernel = parse_kernel(
            ".kernel d\n    mov %dead, 5\n    mov %live, 6\n"
            "    st.global [%live], %live\n    exit\n"
        )
        liveness = compute_liveness(Cfg(kernel))
        assert "%dead" not in liveness.live_after[0]

    def test_region_bounds_checked(self):
        kernel = simple_loop_kernel()
        liveness = compute_liveness(Cfg(kernel))
        from repro.errors import CompilerError

        with pytest.raises(CompilerError):
            region_live_registers(kernel, liveness, 5, 2)
