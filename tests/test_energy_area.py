"""Tests for the energy model and the Section 6.6 area estimate."""

import pytest

from repro import baseline_config, ndp_config
from repro.energy.area import (
    GPU_AREA_MM2,
    MM2_PER_BIT,
    PAPER_TOTAL_MM2,
    estimate_area,
)
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.errors import AnalysisError

CFG = ndp_config()


class TestEnergyModel:
    def _compute(self, **overrides):
        kwargs = dict(
            elapsed_cycles=10_000.0,
            warp_instructions=50_000,
            n_sms_powered=68,
            link_active_bits=1e9,
            link_idle_bit_cycles=1e10,
            dram_activations=1000,
            dram_bytes=1e7,
        )
        kwargs.update(overrides)
        return EnergyModel(CFG).compute(**kwargs)

    def test_all_segments_positive(self):
        energy = self._compute()
        assert energy.sm_j > 0
        assert energy.links_j > 0
        assert energy.dram_j > 0
        assert energy.total_j == pytest.approx(
            energy.sm_j + energy.links_j + energy.dram_j
        )

    def test_link_energy_constants(self):
        # isolate link energy: 1e9 bits at 2 pJ/bit + 1e10 idle at 1.5 pJ
        energy = self._compute()
        expected = (1e9 * 2.0 + 1e10 * 1.5) * 1e-12
        assert energy.links_j == pytest.approx(expected)

    def test_dram_energy_constants(self):
        energy = self._compute()
        expected = 1000 * 11.8e-9 + 1e7 * 8 * 4.0e-12
        assert energy.dram_j == pytest.approx(expected)

    def test_leakage_scales_with_time(self):
        short = self._compute(elapsed_cycles=1_000.0)
        long = self._compute(elapsed_cycles=100_000.0)
        assert long.sm_j > short.sm_j

    def test_fractions(self):
        energy = self._compute()
        total = (
            energy.fraction("sm") + energy.fraction("links") + energy.fraction("dram")
        )
        assert total == pytest.approx(1.0)

    def test_scaled(self):
        energy = self._compute()
        assert energy.scaled(2.0).total_j == pytest.approx(2 * energy.total_j)

    def test_zero_breakdown_fraction_raises(self):
        with pytest.raises(AnalysisError):
            EnergyBreakdown(0.0, 0.0, 0.0).fraction("sm")

    def test_negative_time_rejected(self):
        with pytest.raises(AnalysisError):
            self._compute(elapsed_cycles=-1.0)


class TestAreaEstimate:
    def test_paper_bit_counts(self):
        estimate = estimate_area(CFG)
        assert estimate.analyzer_bits_per_sm == 1920
        assert estimate.metadata_bits_per_sm == 10320
        assert estimate.allocation_table_bits == 9700
        assert estimate.per_sm_bits == 12240

    def test_total_area_matches_paper(self):
        estimate = estimate_area(CFG)
        assert estimate.total_mm2 == pytest.approx(PAPER_TOTAL_MM2, rel=1e-6)

    def test_gpu_fraction_is_paper_value(self):
        estimate = estimate_area(CFG)
        assert estimate.gpu_fraction == pytest.approx(0.00018, rel=1e-6)
        assert GPU_AREA_MM2 == pytest.approx(0.11 / 0.00018)

    def test_area_scales_with_sms(self):
        small = estimate_area(CFG)
        big = estimate_area(baseline_config())  # 68 SMs
        assert big.total_mm2 > small.total_mm2

    def test_mm2_per_bit_positive(self):
        assert MM2_PER_BIT > 0
