"""Cross-policy invariants of the simulator on real suite workloads.

These complement test_simulator.py (MINI-based) with checks against
physically-meaningful properties that must hold regardless of
calibration: conservation, monotonicity under resource scaling, and
bottleneck sanity.
"""

import dataclasses

import pytest

from repro import (
    BASELINE,
    IDEAL_NDP,
    NDP_CTRL_BMAP,
    TOM,
    TraceScale,
    WorkloadRunner,
    ndp_config,
)
from repro.core.simulator import Simulator


@pytest.fixture(scope="module")
def sp_runner():
    return WorkloadRunner("SP", scale=TraceScale.TINY, seed=1)


@pytest.fixture(scope="module")
def lib_runner():
    return WorkloadRunner("LIB", scale=TraceScale.TINY, seed=1)


class TestConservation:
    def test_same_instructions_every_policy(self, sp_runner):
        totals = {
            policy.label: sp_runner.run(policy).warp_instructions
            for policy in (BASELINE, NDP_CTRL_BMAP, TOM, IDEAL_NDP)
        }
        assert len(set(totals.values())) == 1

    def test_offloaded_plus_main_covers_all(self, lib_runner):
        result = lib_runner.run(NDP_CTRL_BMAP)
        assert (
            result.offload.offloaded_warp_instructions
            <= result.offload.total_warp_instructions
        )

    def test_decisions_cover_candidate_instances(self, lib_runner):
        result = lib_runner.run(NDP_CTRL_BMAP)
        # every candidate instance got exactly one decision
        assert (
            result.offload.candidates_considered
            == lib_runner.trace.total_candidate_instances
        )


class TestResourceScaling:
    def test_more_link_bandwidth_never_slower(self, sp_runner):
        slow_cfg = ndp_config()
        fast_cfg = dataclasses.replace(
            slow_cfg,
            links=dataclasses.replace(slow_cfg.links, gpu_stack_gbps=160.0),
        )
        slow = Simulator(sp_runner.trace, slow_cfg, NDP_CTRL_BMAP).run()
        fast = Simulator(sp_runner.trace, fast_cfg, NDP_CTRL_BMAP).run()
        assert fast.cycles <= slow.cycles * 1.02

    def test_more_internal_bandwidth_never_slower(self, sp_runner):
        one_x = ndp_config(internal_bandwidth_ratio=1.0)
        two_x = ndp_config(internal_bandwidth_ratio=2.0)
        slow = Simulator(sp_runner.trace, one_x, NDP_CTRL_BMAP).run()
        fast = Simulator(sp_runner.trace, two_x, NDP_CTRL_BMAP).run()
        assert fast.cycles <= slow.cycles * 1.02

    def test_bigger_stack_sms_accept_more_offloads(self, lib_runner):
        small = Simulator(
            lib_runner.trace, ndp_config(warp_capacity_multiplier=1), NDP_CTRL_BMAP
        ).run()
        large = Simulator(
            lib_runner.trace, ndp_config(warp_capacity_multiplier=4), NDP_CTRL_BMAP
        ).run()
        assert (
            large.offload.candidates_offloaded
            >= small.offload.candidates_offloaded
        )


class TestBottleneckSanity:
    def test_cycles_bounded_below_by_issue_throughput(self, sp_runner):
        """Elapsed time can never beat the aggregate issue bandwidth."""
        result = sp_runner.baseline()
        config = sp_runner.baseline_configuration
        min_cycles = result.warp_instructions / (
            config.gpu.n_sms * config.gpu.issue_per_cycle
        )
        assert result.cycles >= min_cycles

    def test_traffic_bounded_below_by_compulsory_misses(self, sp_runner):
        """Every distinct line must cross the links at least... zero
        times (caches could hold them) — but the total RX bytes can
        never exceed what the trace can possibly request."""
        result = sp_runner.baseline()
        total_lines = sum(
            access.n_lines
            for task in sp_runner.trace.tasks
            for segment in task.segments
            for access in segment.accesses
        )
        line_bytes = sp_runner.baseline_configuration.messages.cache_line_bytes
        assert result.traffic.gpu_memory_rx <= total_lines * line_bytes * 1.01

    def test_ideal_traffic_is_request_packets_only(self, sp_runner):
        base = sp_runner.baseline()
        ideal = sp_runner.run(IDEAL_NDP)
        assert ideal.traffic.off_chip_total < 0.2 * base.traffic.off_chip_total

    def test_row_hit_rate_high_for_streaming(self, sp_runner):
        result = sp_runner.baseline()
        assert result.dram_row_hit_rate > 0.7

    def test_l1_filters_some_loads(self):
        runner = WorkloadRunner("KM", scale=TraceScale.TINY, seed=1)
        result = runner.baseline()
        # the centroid broadcast must produce L1 hits
        assert result.l1_load_miss_rate < 0.9


class TestSeedStability:
    def test_different_seeds_same_direction(self):
        """The headline comparison (ctrl+bmap vs baseline on SP) must
        not flip sign across seeds."""
        speedups = []
        for seed in (1, 2, 3):
            runner = WorkloadRunner("SP", scale=TraceScale.TINY, seed=seed)
            speedups.append(runner.speedup(NDP_CTRL_BMAP))
        assert all(s > 1.0 for s in speedups), speedups
        spread = max(speedups) / min(speedups)
        assert spread < 1.5, f"seed sensitivity too high: {speedups}"
